package datapath

import (
	"fmt"
	"testing"

	"repro/internal/netlist"
)

// buildRegBankNoNames builds a words×bits register bank (as the generator
// does) with anonymous net names, the canonical fold/merge workload.
func buildRegBankNoNames(t *testing.T, bits, words int) (*netlist.Netlist, Labels) {
	t.Helper()
	nl := netlist.New("rb")
	truth := Labels{}
	inDff := make([]netlist.CellID, bits)
	for i := 0; i < bits; i++ {
		inDff[i] = nl.MustAddCell(fmt.Sprintf("in%d", i), "DFF", 6, 10, false)
	}
	type wordCell struct{ mux, dff netlist.CellID }
	wordCells := make([][]wordCell, words)
	dinSinks := make([][]netlist.Endpoint, bits)
	for w := 0; w < words; w++ {
		we := nl.MustAddCell(fmt.Sprintf("we%d", w), "BUF", 2, 10, false)
		var weSinks []netlist.Endpoint
		wordCells[w] = make([]wordCell, bits)
		for i := 0; i < bits; i++ {
			m := nl.MustAddCell(fmt.Sprintf("m%d_%d", w, i), "MUX2", 4, 10, false)
			d := nl.MustAddCell(fmt.Sprintf("d%d_%d", w, i), "DFF", 6, 10, false)
			wordCells[w][i] = wordCell{m, d}
			nl.MustAddNet(fmt.Sprintf("q%d_%d", w, i), 1,
				netlist.Endpoint{Cell: d, Pin: "Q", Dir: netlist.DirOutput},
				netlist.Endpoint{Cell: m, Pin: "A", Dir: netlist.DirInput},
			)
			nl.MustAddNet(fmt.Sprintf("md%d_%d", w, i), 1,
				netlist.Endpoint{Cell: m, Pin: "Y", Dir: netlist.DirOutput},
				netlist.Endpoint{Cell: d, Pin: "D", Dir: netlist.DirInput},
			)
			dinSinks[i] = append(dinSinks[i], netlist.Endpoint{Cell: m, Pin: "B", Dir: netlist.DirInput})
			weSinks = append(weSinks, netlist.Endpoint{Cell: m, Pin: "S", Dir: netlist.DirInput})
		}
		nl.MustAddNet(fmt.Sprintf("wen%d", w), 1,
			append([]netlist.Endpoint{{Cell: we, Pin: "Y", Dir: netlist.DirOutput}}, weSinks...)...)
	}
	for i := 0; i < bits; i++ {
		nl.MustAddNet(fmt.Sprintf("din%d", i), 1,
			append([]netlist.Endpoint{{Cell: inDff[i], Pin: "Q", Dir: netlist.DirOutput}}, dinSinks[i]...)...)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	truth = NewLabels(nl.NumCells())
	for i := 0; i < bits; i++ {
		truth.Group[inDff[i]] = 0
		truth.Bit[inDff[i]] = i
		for w := 0; w < words; w++ {
			truth.Group[wordCells[w][i].mux] = 0
			truth.Bit[wordCells[w][i].mux] = i
			truth.Group[wordCells[w][i].dff] = 0
			truth.Bit[wordCells[w][i].dff] = i
		}
	}
	return nl, truth
}

// The fold phase is exercised end to end: the structural m-net bus folds all
// words into one column; the fold must recover bits×(2·words) and regrow
// must absorb the shared input column.
func TestFoldRecoversRegisterBank(t *testing.T) {
	nl, truth := buildRegBankNoNames(t, 8, 4)
	opt := DefaultOptions()
	opt.UseNames = false
	ext := Extract(nl, opt)
	score := Compare(truth, ext.Labels())
	if score.Precision < 0.999 || score.Recall < 0.999 {
		t.Fatalf("register bank not recovered: %+v (groups %v)", score, ext.Groups)
	}
	if len(ext.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(ext.Groups))
	}
	g := ext.Groups[0]
	if g.Bits() != 8 || g.Stages() != 9 { // 4 words × (mux+dff) + input column
		t.Errorf("shape = %d×%d, want 8×9", g.Bits(), g.Stages())
	}
}

func TestBuildFoldHypothesis(t *testing.T) {
	// 8 nets, each covering 4 rows: a clean 8-class fold of 32 rows.
	byNet := map[netlist.NetID][]int{}
	for i := 0; i < 8; i++ {
		rows := []int{i, i + 8, i + 16, i + 24}
		byNet[netlist.NetID(i)] = rows
	}
	h := buildFoldHypothesis(byNet, 32, 4)
	if h == nil {
		t.Fatal("clean fold rejected")
	}
	if h.k != 4 || len(h.classes) != 8 {
		t.Errorf("fold = %d classes of %d", len(h.classes), h.k)
	}
	// Too little coverage: only 2 of 32 rows.
	small := map[netlist.NetID][]int{0: {0, 1}}
	if buildFoldHypothesis(small, 32, 4) != nil {
		t.Error("sparse evidence accepted")
	}
	// Overlapping classes are pathological.
	overlap := map[netlist.NetID][]int{}
	for i := 0; i < 8; i++ {
		overlap[netlist.NetID(i)] = []int{0, 1, 2, 3} // all the same rows
	}
	if buildFoldHypothesis(overlap, 8, 4) != nil {
		t.Error("overlapping classes accepted")
	}
}

func TestConsistentMapping(t *testing.T) {
	// Identity votes on 4 bits.
	v := map[[2]int]int{{0, 0}: 3, {1, 1}: 3, {2, 2}: 3, {3, 3}: 3}
	perm, ok := consistentMapping(v, 4)
	if !ok {
		t.Fatal("identity mapping rejected")
	}
	for i, p := range perm {
		if p != i {
			t.Errorf("perm[%d] = %d", i, p)
		}
	}
	// Conflicting (non-injective) strongest votes.
	v = map[[2]int]int{{0, 1}: 3, {1, 1}: 4, {2, 2}: 3, {3, 3}: 3}
	if _, ok := consistentMapping(v, 4); ok {
		t.Error("non-injective mapping accepted")
	}
	// Too few voted bits (1 of 4 < 3/4).
	v = map[[2]int]int{{0, 0}: 5}
	if _, ok := consistentMapping(v, 4); ok {
		t.Error("under-voted mapping accepted")
	}
	// Out-of-range vote.
	v = map[[2]int]int{{0, 9}: 5}
	if _, ok := consistentMapping(v, 4); ok {
		t.Error("out-of-range vote accepted")
	}
	// Partial votes filled injectively: 3 of 4 voted.
	v = map[[2]int]int{{0, 1}: 2, {1, 0}: 2, {2, 2}: 2}
	perm, ok = consistentMapping(v, 4)
	if !ok {
		t.Fatal("3/4-voted mapping rejected")
	}
	seen := map[int]bool{}
	for _, p := range perm {
		if seen[p] {
			t.Fatalf("perm not injective: %v", perm)
		}
		seen[p] = true
	}
}

func TestMergeGroupsJoinsConnectedArrays(t *testing.T) {
	// Two 4-bit chains connected bit-wise: merge must unify them.
	nl := netlist.New("mg")
	mk := func(prefix string, typ string) []netlist.CellID {
		out := make([]netlist.CellID, 4)
		for b := 0; b < 4; b++ {
			out[b] = nl.MustAddCell(prefix+fmt.Sprint(b), typ, 4, 10, false)
		}
		return out
	}
	a0, a1 := mk("a0_", "DFF"), mk("a1_", "DFF")
	b0, b1 := mk("b0_", "XOR2"), mk("b1_", "XOR2")
	link := func(from, to []netlist.CellID, name string, outPin, inPin string) {
		for b := 0; b < 4; b++ {
			nl.MustAddNet(fmt.Sprintf("%s%d", name, b), 1,
				netlist.Endpoint{Cell: from[b], Pin: outPin, Dir: netlist.DirOutput},
				netlist.Endpoint{Cell: to[b], Pin: inPin, Dir: netlist.DirInput},
			)
		}
	}
	link(a0, a1, "la", "Q", "D")
	link(a1, b0, "x", "Q", "A") // the cross-group connection
	link(b0, b1, "lb", "Y", "A")
	groups := []Group{
		{Columns: [][]netlist.CellID{a0, a1}},
		{Columns: [][]netlist.CellID{b0, b1}},
	}
	merged := mergeGroups(nl, groups, 12)
	if len(merged) != 1 {
		t.Fatalf("groups after merge = %d, want 1", len(merged))
	}
	if merged[0].Stages() != 4 || merged[0].Bits() != 4 {
		t.Errorf("merged shape = %d×%d", merged[0].Bits(), merged[0].Stages())
	}
}

func TestMergeGroupsKeepsUnrelated(t *testing.T) {
	nl := netlist.New("mg2")
	mk := func(prefix string) []netlist.CellID {
		out := make([]netlist.CellID, 4)
		for b := 0; b < 4; b++ {
			out[b] = nl.MustAddCell(prefix+fmt.Sprint(b), "DFF", 4, 10, false)
			nl.MustAddNet(prefix+"n"+fmt.Sprint(b), 1,
				netlist.Endpoint{Cell: out[b], Pin: "Q", Dir: netlist.DirOutput})
		}
		return out
	}
	groups := []Group{
		{Columns: [][]netlist.CellID{mk("a"), mk("b")}},
		{Columns: [][]netlist.CellID{mk("c"), mk("d")}},
	}
	merged := mergeGroups(nl, groups, 12)
	if len(merged) != 2 {
		t.Fatalf("unconnected groups merged: %d", len(merged))
	}
}
