package sparse

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotConverged is returned when CG exhausts its iteration budget without
// reaching the requested tolerance. The solution vector still holds the best
// iterate, which is usually good enough for an initial placement.
var ErrNotConverged = errors.New("sparse: cg did not converge")

// CGOptions controls the conjugate-gradient solver.
type CGOptions struct {
	MaxIter int     // 0 means 10*N
	Tol     float64 // relative residual target; 0 means 1e-6
}

// CGResult reports solver statistics.
type CGResult struct {
	Iters    int
	Residual float64 // final relative residual ||b-Ax|| / ||b||
}

// SolveCG solves A x = b for symmetric positive definite A with
// Jacobi-preconditioned conjugate gradients. x holds the initial guess on
// entry and the solution on exit.
func SolveCG(a *CSR, x, b []float64, opt CGOptions) (CGResult, error) {
	n := a.N
	if len(x) != n || len(b) != n {
		panic(fmt.Sprintf("sparse: SolveCG dimension mismatch (n=%d, len(x)=%d, len(b)=%d)", n, len(x), len(b)))
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-6
	}

	// Jacobi preconditioner: M^{-1} = 1/diag(A), guarding zero diagonals.
	minv := make([]float64, n)
	a.Diag(minv)
	for i, d := range minv {
		if d > 0 {
			minv[i] = 1 / d
		} else {
			minv[i] = 1
		}
	}

	r := make([]float64, n)  // residual b - A x
	z := make([]float64, n)  // preconditioned residual
	p := make([]float64, n)  // search direction
	ap := make([]float64, n) // A p

	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		// b = 0 has the unique SPD solution x = 0.
		for i := range x {
			x[i] = 0
		}
		return CGResult{Iters: 0, Residual: 0}, nil
	}

	for i := range z {
		z[i] = minv[i] * r[i]
	}
	copy(p, z)
	rz := Dot(r, z)

	res := Norm2(r) / bnorm
	var it int
	for it = 0; it < opt.MaxIter && res > opt.Tol; it++ {
		a.MulVec(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			// Matrix not SPD along p (or breakdown); stop with best iterate.
			return CGResult{Iters: it, Residual: res}, fmt.Errorf("sparse: cg breakdown (pAp=%g): %w", pap, ErrNotConverged)
		}
		alpha := rz / pap
		Axpy(x, alpha, p)
		Axpy(r, -alpha, ap)
		res = Norm2(r) / bnorm
		if res <= opt.Tol {
			it++
			break
		}
		for i := range z {
			z[i] = minv[i] * r[i]
		}
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	if res > opt.Tol {
		return CGResult{Iters: it, Residual: res}, ErrNotConverged
	}
	return CGResult{Iters: it, Residual: res}, nil
}
