package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(1, 2, -1)
	b.Add(1, 2, 0.5)
	m := b.Build()
	if got := m.At(0, 0); got != 3 {
		t.Errorf("At(0,0) = %g, want 3", got)
	}
	if got := m.At(1, 2); got != -0.5 {
		t.Errorf("At(1,2) = %g, want -0.5", got)
	}
	if got := m.At(2, 2); got != 0 {
		t.Errorf("At(2,2) = %g, want 0", got)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestBuilderDropsCancellations(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 1, 5)
	b.Add(0, 1, -5)
	m := b.Build()
	if m.NNZ() != 0 {
		t.Errorf("cancelled entry stored: NNZ=%d", m.NNZ())
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder(2).Add(2, 0, 1)
}

func TestAddSym(t *testing.T) {
	b := NewBuilder(3)
	b.AddSym(0, 2, 4)
	m := b.Build()
	if m.At(0, 0) != 4 || m.At(2, 2) != 4 || m.At(0, 2) != -4 || m.At(2, 0) != -4 {
		t.Errorf("AddSym stencil wrong: %v %v %v %v",
			m.At(0, 0), m.At(2, 2), m.At(0, 2), m.At(2, 0))
	}
}

func TestMulVec(t *testing.T) {
	// [2 -1 0; -1 2 -1; 0 -1 2] * [1 2 3] = [0, 0, 4]
	b := NewBuilder(3)
	b.AddSym(0, 1, 1)
	b.AddSym(1, 2, 1)
	b.AddDiag(0, 1)
	b.AddDiag(2, 1)
	m := b.Build()
	x := []float64{1, 2, 3}
	dst := make([]float64, 3)
	m.MulVec(dst, x)
	want := []float64{0, 0, 4}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec = %v, want %v", dst, want)
		}
	}
}

func TestDiag(t *testing.T) {
	b := NewBuilder(3)
	b.AddDiag(0, 2)
	b.Add(1, 2, 9) // off-diagonal only in row 1
	m := b.Build()
	d := make([]float64, 3)
	m.Diag(d)
	if d[0] != 2 || d[1] != 0 || d[2] != 0 {
		t.Errorf("Diag = %v", d)
	}
}

func TestVectorKernels(t *testing.T) {
	a := []float64{1, 2, 3}
	bb := []float64{4, 5, 6}
	if Dot(a, bb) != 32 {
		t.Errorf("Dot = %g", Dot(a, bb))
	}
	dst := []float64{1, 1, 1}
	Axpy(dst, 2, a)
	if dst[0] != 3 || dst[1] != 5 || dst[2] != 7 {
		t.Errorf("Axpy = %v", dst)
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Errorf("Norm2 = %g", Norm2([]float64{3, 4}))
	}
}

// laplacianSPD builds the standard SPD test matrix: a path-graph Laplacian
// plus anchors at both ends (tridiagonal [-1 2 -1] with strengthened ends).
func laplacianSPD(n int) *CSR {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddSym(i, i+1, 1)
	}
	b.AddDiag(0, 1)
	b.AddDiag(n-1, 1)
	return b.Build()
}

func TestSolveCGExact(t *testing.T) {
	n := 50
	a := laplacianSPD(n)
	rng := rand.New(rand.NewSource(42))
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, want)

	x := make([]float64, n)
	res, err := SolveCG(a, x, b, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatalf("SolveCG: %v (res=%+v)", err, res)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g, want %g (res=%+v)", i, x[i], want[i], res)
		}
	}
	if res.Iters == 0 {
		t.Error("solver claims zero iterations for nontrivial system")
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	a := laplacianSPD(10)
	x := make([]float64, 10)
	for i := range x {
		x[i] = 5 // nonzero guess must be reset
	}
	res, err := SolveCG(a, x, make([]float64, 10), CGOptions{})
	if err != nil {
		t.Fatalf("SolveCG: %v", err)
	}
	for i := range x {
		if x[i] != 0 {
			t.Fatalf("x[%d] = %g, want 0", i, x[i])
		}
	}
	if res.Residual != 0 {
		t.Errorf("Residual = %g", res.Residual)
	}
}

func TestSolveCGWarmStart(t *testing.T) {
	n := 30
	a := laplacianSPD(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i % 3)
	}
	cold := make([]float64, n)
	resCold, err := SolveCG(a, cold, b, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	// Warm start from the solution: should converge immediately.
	warm := make([]float64, n)
	copy(warm, cold)
	resWarm, err := SolveCG(a, warm, b, CGOptions{Tol: 1e-8})
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if resWarm.Iters > resCold.Iters/2 {
		t.Errorf("warm start did not help: warm=%d cold=%d iters", resWarm.Iters, resCold.Iters)
	}
}

func TestSolveCGIterationBudget(t *testing.T) {
	n := 200
	a := laplacianSPD(n)
	b := make([]float64, n)
	b[n/2] = 1
	x := make([]float64, n)
	_, err := SolveCG(a, x, b, CGOptions{MaxIter: 2, Tol: 1e-14})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("expected ErrNotConverged, got %v", err)
	}
}

func TestSolveCGBreakdownOnIndefinite(t *testing.T) {
	// Indefinite matrix: diag(1, -1).
	bld := NewBuilder(2)
	bld.AddDiag(0, 1)
	bld.Add(1, 1, -1)
	a := bld.Build()
	x := make([]float64, 2)
	_, err := SolveCG(a, x, []float64{0, 1}, CGOptions{})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("expected breakdown error, got %v", err)
	}
}

// Property: for random SPD systems (Laplacian + random positive diagonal),
// CG reproduces A*x = b to tolerance.
func TestSolveCGProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		b := NewBuilder(n)
		for i := 0; i+1 < n; i++ {
			b.AddSym(i, i+1, 0.5+rng.Float64())
		}
		// Random extra springs keep it interesting.
		for k := 0; k < n/2; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				b.AddSym(i, j, rng.Float64())
			}
		}
		for i := 0; i < n; i++ {
			b.AddDiag(i, 0.1+rng.Float64())
		}
		a := b.Build()
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64() * 10
		}
		rhs := make([]float64, n)
		a.MulVec(rhs, want)
		x := make([]float64, n)
		if _, err := SolveCG(a, x, rhs, CGOptions{Tol: 1e-10}); err != nil {
			return false
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: MulVec is linear: A(x+y) = Ax + Ay.
func TestMulVecLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 20
	a := laplacianSPD(n)
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		ax := make([]float64, n)
		ay := make([]float64, n)
		axy := make([]float64, n)
		sum := make([]float64, n)
		a.MulVec(ax, x)
		a.MulVec(ay, y)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		a.MulVec(axy, sum)
		for i := range axy {
			if math.Abs(axy[i]-(ax[i]+ay[i])) > 1e-9 {
				t.Fatalf("linearity violated at %d", i)
			}
		}
	}
}

func BenchmarkSolveCG(b *testing.B) {
	n := 5000
	a := laplacianSPD(n)
	rhs := make([]float64, n)
	rhs[n/3] = 1
	rhs[2*n/3] = -1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, n)
		_, _ = SolveCG(a, x, rhs, CGOptions{Tol: 1e-6})
	}
}
