// Package sparse implements the sparse linear algebra needed by the
// quadratic (bound-to-bound) initial placement: a coordinate-list builder, a
// compressed-sparse-row matrix, dense vector kernels, and a
// Jacobi-preconditioned conjugate-gradient solver for symmetric positive
// definite systems.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Triplet is one (row, col, value) entry in a matrix under construction.
type Triplet struct {
	Row, Col int
	Val      float64
}

// Builder accumulates triplets (duplicates allowed; they sum) and compiles
// them into a CSR matrix.
type Builder struct {
	n       int
	entries []Triplet
}

// NewBuilder returns a builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// Add accumulates v at (row, col). Out-of-range indices panic: they are
// programming errors in system assembly.
func (b *Builder) Add(row, col int, v float64) {
	if row < 0 || row >= b.n || col < 0 || col >= b.n {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range for n=%d", row, col, b.n))
	}
	if v == 0 {
		return
	}
	b.entries = append(b.entries, Triplet{row, col, v})
}

// AddSym accumulates the symmetric 2x2 stencil of a spring between i and j
// with stiffness w: +w on both diagonals, -w on both off-diagonals. This is
// the building block of quadratic net models.
func (b *Builder) AddSym(i, j int, w float64) {
	b.Add(i, i, w)
	b.Add(j, j, w)
	b.Add(i, j, -w)
	b.Add(j, i, -w)
}

// AddDiag accumulates w on the diagonal at i (a spring to a fixed anchor).
func (b *Builder) AddDiag(i int, w float64) {
	b.Add(i, i, w)
}

// Build compiles the accumulated triplets into a CSR matrix, summing
// duplicates.
func (b *Builder) Build() *CSR {
	sort.Slice(b.entries, func(a, c int) bool {
		ea, ec := b.entries[a], b.entries[c]
		if ea.Row != ec.Row {
			return ea.Row < ec.Row
		}
		return ea.Col < ec.Col
	})
	m := &CSR{
		N:      b.n,
		RowPtr: make([]int, b.n+1),
	}
	for k := 0; k < len(b.entries); {
		e := b.entries[k]
		sum := 0.0
		for k < len(b.entries) && b.entries[k].Row == e.Row && b.entries[k].Col == e.Col {
			sum += b.entries[k].Val
			k++
		}
		if sum != 0 {
			m.Col = append(m.Col, e.Col)
			m.Val = append(m.Val, sum)
			m.RowPtr[e.Row+1]++
		}
	}
	for i := 0; i < b.n; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	N      int
	RowPtr []int // len N+1
	Col    []int
	Val    []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes dst = m * x. dst and x must have length N and must not
// alias.
func (m *CSR) MulVec(dst, x []float64) {
	if len(dst) != m.N || len(x) != m.N {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := 0; i < m.N; i++ {
		sum := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Val[k] * x[m.Col[k]]
		}
		dst[i] = sum
	}
}

// Diag extracts the matrix diagonal into dst (length N). Missing diagonal
// entries read as zero.
func (m *CSR) Diag(dst []float64) {
	if len(dst) != m.N {
		panic("sparse: Diag dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Col[k] == i {
				dst[i] = m.Val[k]
			}
		}
	}
}

// At returns the value at (row, col); zero when not stored.
func (m *CSR) At(row, col int) float64 {
	for k := m.RowPtr[row]; k < m.RowPtr[row+1]; k++ {
		if m.Col[k] == col {
			return m.Val[k]
		}
	}
	return 0
}

// Dot returns the dot product of a and b.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes dst[i] += alpha*x[i].
func Axpy(dst []float64, alpha float64, x []float64) {
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
