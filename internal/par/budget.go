package par

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Budget is a machine-wide worker allowance shared by concurrent placements.
// Each job acquires a grant before building its par.Pool and releases it when
// the job ends, so the sum of all live pools' workers never exceeds the
// budget — running four placements on an eight-core box means four pools
// whose worker counts add up to at most eight, not four pools of eight
// workers each thrashing the scheduler.
//
// Acquire is deliberately elastic: a caller asking for more workers than are
// free is granted what is free (at least one) rather than blocking until its
// full request fits. Placements are bit-identical at every worker count, so
// shrinking a grant only trades wall clock — it can never change a result —
// and the elastic policy keeps the queue draining under load instead of
// convoying behind wide jobs.
type Budget struct {
	mu        sync.Mutex
	total     int
	used      int
	highWater int           // max of used ever observed, for tests and stats
	waiters   chan struct{} // capacity 1; signaled on every Release
	hooks     BudgetHooks
}

// BudgetHooks are optional observation points a daemon wires to its metrics
// registry. Both callbacks run outside the budget's lock and may fire
// concurrently from many goroutines; nil fields are simply skipped, so the
// zero value means "unobserved" and costs nothing on the grant path.
type BudgetHooks struct {
	// WaitSeconds receives the wall time one Acquire spent blocked (zero when
	// capacity was free immediately). Fires once per successful grant.
	WaitSeconds func(seconds float64)
	// Occupancy receives the in-use and high-water counts after every grant
	// and release — the live utilization a gauge tracks.
	Occupancy func(used, highWater int)
}

// SetHooks installs the observation hooks. Call once at wiring time, before
// the budget sees traffic; later calls replace the hooks for future events.
func (b *Budget) SetHooks(h BudgetHooks) {
	b.mu.Lock()
	b.hooks = h
	b.mu.Unlock()
}

// NewBudget returns a budget of the given size. Zero or negative means
// GOMAXPROCS(0), matching par.New's meaning of "all cores".
func NewBudget(total int) *Budget {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	return &Budget{total: total, waiters: make(chan struct{}, 1)}
}

// Total returns the budget size.
func (b *Budget) Total() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// InUse returns the number of workers currently granted.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// HighWater returns the largest InUse value ever observed — the witness the
// budget tests assert never exceeds Total.
func (b *Budget) HighWater() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.highWater
}

// Acquire grants between 1 and want workers, blocking while the budget is
// exhausted. want <= 0 asks for the whole budget. Returns the granted count,
// or 0 and ctx.Err() when the context expires first. Every successful
// Acquire must be paired with a Release of the same count.
func (b *Budget) Acquire(ctx context.Context, want int) (int, error) {
	if want <= 0 {
		want = b.Total()
	}
	var blocked obs.Stopwatch
	for {
		b.mu.Lock()
		if free := b.total - b.used; free > 0 {
			n := want
			if n > free {
				n = free
			}
			b.used += n
			if b.used > b.highWater {
				b.highWater = b.used
			}
			leftover := b.total - b.used
			used, hw, hooks := b.used, b.highWater, b.hooks
			b.mu.Unlock()
			if hooks.WaitSeconds != nil {
				hooks.WaitSeconds(blocked.Seconds())
			}
			if hooks.Occupancy != nil {
				hooks.Occupancy(used, hw)
			}
			if leftover > 0 {
				// Cascade the wake-up: the channel holds at most one signal,
				// so a waiter that doesn't consume all freed capacity must
				// pass the signal on or a sibling waiter could sleep through
				// available workers.
				select {
				case b.waiters <- struct{}{}:
				default:
				}
			}
			return n, nil
		}
		b.mu.Unlock()
		if !blocked.Started() {
			blocked = obs.StartStopwatch()
		}
		select {
		case <-b.waiters:
			// A Release freed capacity; retry. Other waiters that lose the
			// race simply loop again on the next signal.
		case <-ctxDone(ctx):
			return 0, ctx.Err()
		}
	}
}

// Release returns n workers to the budget. Releasing more than was acquired
// panics: it means a bookkeeping bug that would silently over-admit jobs.
func (b *Budget) Release(n int) {
	if n <= 0 {
		return
	}
	b.mu.Lock()
	if n > b.used {
		b.mu.Unlock()
		panic("par: Budget.Release of more workers than acquired")
	}
	b.used -= n
	used, hw, hooks := b.used, b.highWater, b.hooks
	b.mu.Unlock()
	if hooks.Occupancy != nil {
		hooks.Occupancy(used, hw)
	}
	select {
	case b.waiters <- struct{}{}:
	default: // a wake-up is already pending; one is enough
	}
}

// ctxDone returns ctx.Done() with nil-context tolerance (a nil channel
// blocks forever, matching "background context never expires").
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}
