package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunCoversRange verifies every index is visited exactly once at several
// worker counts and grain sizes.
func TestRunCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			for _, grain := range []int{0, 1, 7, 64} {
				p := New(workers)
				seen := make([]int32, n)
				err := p.Run(context.Background(), n, grain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&seen[i], 1)
					}
				})
				if err != nil {
					t.Fatalf("workers=%d n=%d grain=%d: %v", workers, n, grain, err)
				}
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times",
							workers, n, grain, i, c)
					}
				}
			}
		}
	}
}

// TestForShardsDeterministicBoundaries verifies shard boundaries depend only
// on (n, shards): every worker count sees identical partitions, shards are
// contiguous, disjoint and cover the range.
func TestForShardsDeterministicBoundaries(t *testing.T) {
	const n, shards = 103, 8
	var want [][2]int
	for _, workers := range []int{1, 2, 4} {
		p := New(workers)
		got := make([][2]int, shards)
		for i := range got {
			got[i] = [2]int{-1, -1}
		}
		var mu atomic.Int32
		err := p.ForShards(context.Background(), n, shards, func(s, lo, hi int) {
			got[s] = [2]int{lo, hi}
			mu.Add(int32(hi - lo))
		})
		if err != nil {
			t.Fatal(err)
		}
		if int(mu.Load()) != n {
			t.Fatalf("workers=%d: covered %d of %d indices", workers, mu.Load(), n)
		}
		prev := 0
		for s, b := range got {
			if b[0] != prev {
				t.Fatalf("workers=%d: shard %d starts at %d, want %d", workers, s, b[0], prev)
			}
			prev = b[1]
		}
		if prev != n {
			t.Fatalf("workers=%d: shards end at %d, want %d", workers, prev, n)
		}
		if want == nil {
			want = got
		} else {
			for s := range got {
				if got[s] != want[s] {
					t.Fatalf("shard %d boundaries differ across worker counts: %v vs %v",
						s, got[s], want[s])
				}
			}
		}
	}
}

// TestRunDeterministicFloatReduction is the contract test behind the
// placer's bit-identity guarantee: a parallel per-index compute phase
// followed by a serial in-order reduce must match the plain serial loop
// exactly, at every worker count.
func TestRunDeterministicFloatReduction(t *testing.T) {
	const n = 4096
	vals := make([]float64, n)
	for i := range vals {
		// Spread magnitudes so summation order actually matters.
		vals[i] = float64((i*2654435761)%1000) * 1e-3 * float64(1+i%17)
	}
	serial := 0.0
	for _, v := range vals {
		serial += v * v
	}
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		sq := make([]float64, n)
		if err := p.Run(context.Background(), n, 33, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sq[i] = vals[i] * vals[i]
			}
		}); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range sq {
			sum += v
		}
		if sum != serial {
			t.Fatalf("workers=%d: parallel-compute + serial-reduce %v != serial %v", workers, sum, serial)
		}
	}
}

// TestRunCancellation verifies an expired context is reported and that a
// pre-cancelled context runs nothing.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(4)
	ran := atomic.Int32{}
	err := p.Run(ctx, 1000, 1, func(lo, hi int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled context still ran %d chunks", ran.Load())
	}
	// Nil context is background.
	if err := (*Pool)(nil).Run(nil, 10, 0, func(lo, hi int) {}); err != nil { //nolint:staticcheck
		t.Fatalf("nil ctx: %v", err)
	}
}

// TestNilPoolInline verifies the nil pool runs inline with one worker.
func TestNilPoolInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", p.Workers())
	}
	count := 0
	if err := p.Run(context.Background(), 50, 0, func(lo, hi int) {
		count += hi - lo // no atomics: must be single-goroutine
	}); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("covered %d, want 50", count)
	}
}

// TestNewDefaults verifies New(0) picks up GOMAXPROCS.
func TestNewDefaults(t *testing.T) {
	if w := New(0).Workers(); w < 1 {
		t.Fatalf("New(0).Workers() = %d", w)
	}
	if w := New(3).Workers(); w != 3 {
		t.Fatalf("New(3).Workers() = %d", w)
	}
}
