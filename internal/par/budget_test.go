package par

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestBudgetGrantsAndReleases(t *testing.T) {
	b := NewBudget(4)
	if b.Total() != 4 {
		t.Fatalf("Total = %d, want 4", b.Total())
	}
	n, err := b.Acquire(context.Background(), 3)
	if err != nil || n != 3 {
		t.Fatalf("Acquire(3) = %d, %v", n, err)
	}
	// Only one worker is free; an over-ask is trimmed, not blocked.
	n2, err := b.Acquire(context.Background(), 8)
	if err != nil || n2 != 1 {
		t.Fatalf("Acquire(8) with 1 free = %d, %v, want 1", n2, err)
	}
	if got := b.InUse(); got != 4 {
		t.Fatalf("InUse = %d, want 4", got)
	}
	b.Release(3)
	b.Release(1)
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse after release = %d, want 0", got)
	}
	if hw := b.HighWater(); hw != 4 {
		t.Fatalf("HighWater = %d, want 4", hw)
	}
}

func TestBudgetWantZeroMeansWholeBudget(t *testing.T) {
	b := NewBudget(3)
	n, err := b.Acquire(context.Background(), 0)
	if err != nil || n != 3 {
		t.Fatalf("Acquire(0) = %d, %v, want 3", n, err)
	}
	b.Release(n)
}

func TestBudgetBlocksUntilRelease(t *testing.T) {
	b := NewBudget(1)
	n, err := b.Acquire(context.Background(), 1)
	if err != nil || n != 1 {
		t.Fatalf("Acquire = %d, %v", n, err)
	}
	got := make(chan int)
	go func() {
		m, err := b.Acquire(context.Background(), 1)
		if err != nil {
			t.Errorf("blocked Acquire: %v", err)
		}
		got <- m
	}()
	select {
	case m := <-got:
		t.Fatalf("Acquire returned %d before Release", m)
	case <-time.After(20 * time.Millisecond):
	}
	b.Release(1)
	select {
	case m := <-got:
		if m != 1 {
			t.Fatalf("unblocked Acquire = %d, want 1", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire still blocked after Release")
	}
	b.Release(1)
}

func TestBudgetAcquireHonorsContext(t *testing.T) {
	b := NewBudget(1)
	if _, err := b.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if n, err := b.Acquire(ctx, 1); err == nil {
		t.Fatalf("Acquire on canceled ctx granted %d, want error", n)
	}
	b.Release(1)
}

func TestBudgetReleaseTooMuchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release of unacquired workers did not panic")
		}
	}()
	NewBudget(2).Release(1)
}

// TestBudgetNeverExceedsTotalUnderContention hammers a small budget from
// many goroutines and asserts the high-water mark stays within the total —
// the invariant the daemon's scheduler relies on. Run with -race.
func TestBudgetNeverExceedsTotalUnderContention(t *testing.T) {
	for _, total := range []int{1, 2, 4} {
		b := NewBudget(total)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(want int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					n, err := b.Acquire(context.Background(), want)
					if err != nil {
						t.Errorf("Acquire: %v", err)
						return
					}
					if n < 1 || n > total {
						t.Errorf("grant %d outside [1,%d]", n, total)
					}
					b.Release(n)
				}
			}(1 + g%4)
		}
		wg.Wait()
		if hw := b.HighWater(); hw > total {
			t.Errorf("total=%d: high water %d exceeds budget", total, hw)
		}
		if used := b.InUse(); used != 0 {
			t.Errorf("total=%d: %d workers leaked", total, used)
		}
	}
}
