// Package par provides the bounded worker pool that drives the placer's
// parallel hot paths (wirelength, density, routing estimates). It is built
// around one non-negotiable contract: determinism. A computation run through
// the pool must produce bit-identical results for every worker count,
// including one — otherwise placements would stop being reproducible and the
// golden tests of this repository would be meaningless.
//
// The pool achieves that by separating *computation* from *reduction*:
//
//   - Run distributes disjoint index chunks to workers dynamically (an atomic
//     cursor) for load balance. Workers must only write to per-index slots —
//     never to shared accumulators — so the schedule cannot influence the
//     result.
//   - ForShards splits the index space into a fixed number of contiguous
//     shards, independent of worker count, so per-shard accumulators can be
//     merged afterwards in shard order when a caller does need accumulation
//     inside the parallel section (e.g. density tiled by bin rows, where each
//     shard owns a disjoint set of bins).
//
// Floating-point reductions that must match a serial loop bit-for-bit are
// done by the caller, serially, in index order, over the per-index results
// the parallel phase produced.
//
// Cancellation is cooperative and conservative: Run and ForShards check the
// context before dispatching work and between chunks, stop handing out new
// chunks once it expires, and return the context error. Chunks that already
// started always run to completion, so a non-nil error is the only signal
// that the output is incomplete; callers must discard it. A nil or
// single-worker pool executes inline on the calling goroutine with no
// goroutines and no synchronization — the exact serial code path.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool. The zero value and the nil pool are valid
// and execute everything inline on the calling goroutine (worker count 1).
// A Pool carries no goroutines between calls — workers are spawned per
// operation and joined before it returns — so a Pool is safe to share and
// cheap to hold for the lifetime of a solver.
type Pool struct {
	workers int
}

// New returns a pool with the given worker count. Zero or negative means
// GOMAXPROCS(0), the number of OS threads Go will actually run in parallel.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// minGrain is the smallest chunk Run hands to a worker when the caller
// passes grain <= 0; it bounds scheduling overhead for tiny items.
const minGrain = 16

// Run executes fn over the half-open ranges that partition [0, n), handing
// chunks of about `grain` indices to workers dynamically. fn must confine
// its writes to the slots of its own range. Returns ctx.Err() when the
// context expired before all chunks were dispatched — the caller must then
// treat the output as incomplete. A nil ctx is treated as background.
func (p *Pool) Run(ctx context.Context, n, grain int, fn func(lo, hi int)) error {
	return p.RunWorker(ctx, n, grain, func(_, lo, hi int) { fn(lo, hi) })
}

// RunWorker is Run with the executing worker's index (0 ≤ w < Workers())
// passed to fn, so callers can hand each worker private scratch state —
// per-worker wirelength models, gather buffers — without synchronization.
// The worker index must only select scratch, never influence the values
// computed, or determinism across worker counts is lost.
func (p *Pool) RunWorker(ctx context.Context, n, grain int, fn func(worker, lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = minGrain
	}
	w := p.Workers()
	if w == 1 || n <= grain {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		fn(0, 0, n)
		return nil
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	d := &dispatch{ctx: ctx, n: n, grain: grain, fn: fn}
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			d.runChunks(worker)
		}(g)
	}
	wg.Wait()
	if d.stopped.Load() {
		return ctx.Err()
	}
	return nil
}

// dispatch is the shared state of one RunWorker invocation: the chunk
// cursor the workers race on, the cooperative stop flag, and the kernel
// closure they all execute.
type dispatch struct {
	ctx      context.Context
	n, grain int
	fn       func(worker, lo, hi int)
	cursor   atomic.Int64
	stopped  atomic.Bool
}

// runChunks is the per-worker dispatch loop: claim a chunk from the shared
// cursor, check cancellation, run the kernel over it, repeat. It sits
// between every pair of kernel chunks on every parallel hot path, so the
// DESIGN.md §14 zero-allocation contract applies to the loop itself —
// only atomics, the context poll, and the kernel call.
//
//placelint:hotpath
func (d *dispatch) runChunks(worker int) {
	for {
		if d.stopped.Load() {
			return
		}
		lo := int(d.cursor.Add(int64(d.grain))) - d.grain
		if lo >= d.n {
			return
		}
		if err := ctxErr(d.ctx); err != nil {
			d.stopped.Store(true)
			return
		}
		hi := lo + d.grain
		if hi > d.n {
			hi = d.n
		}
		//placelint:ignore hotalloc the kernel closure is the caller's to keep allocation-free; the §14 kernels it wraps carry their own hotpath contracts
		d.fn(worker, lo, hi)
	}
}

// ForShards splits [0, n) into exactly `shards` contiguous ranges (the last
// ones may be empty when shards > n) and runs fn(shard, lo, hi) for each,
// concurrently across the pool's workers. The shard boundaries depend only
// on n and shards — never on the worker count — so per-shard accumulators
// merged in shard order yield the same result at every parallelism level.
// Like Run, it stops dispatching when ctx expires and returns the context
// error; started shards complete.
func (p *Pool) ForShards(ctx context.Context, n, shards int, fn func(shard, lo, hi int)) error {
	if n <= 0 || shards <= 0 {
		return nil
	}
	// Balanced contiguous partition: the first n%shards shards get one extra.
	q, r := n/shards, n%shards
	bounds := make([]int, shards+1)
	for s := 0; s < shards; s++ {
		sz := q
		if s < r {
			sz++
		}
		bounds[s+1] = bounds[s] + sz
	}
	return p.Run(ctx, shards, 1, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			if bounds[s] < bounds[s+1] {
				fn(s, bounds[s], bounds[s+1])
			}
		}
	})
}

// ctxErr is ctx.Err() with nil-context tolerance.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
