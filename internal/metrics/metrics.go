// Package metrics assembles the quality report of a finished placement: the
// wirelength, routability and utilization numbers the evaluation tables are
// built from.
package metrics

import (
	"context"
	"fmt"

	"repro/internal/density"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/route"
)

// Report is the standard per-placement quality summary.
type Report struct {
	HPWL       float64
	SteinerWL  float64
	MaxUtil    float64
	Congestion route.CongestionStats
	// Routed is the global-router view: wirelength with congestion-driven
	// detours, plus residual overflow. It is the closest proxy to the
	// routed-wirelength numbers placement papers report.
	Routed route.GRouteResult
}

// Options tunes evaluation.
type Options struct {
	GridDim   int     // congestion/utilization grid (default 32)
	WireWidth float64 // RUDY wire width (default 1)
	Capacity  float64 // RUDY capacity per unit area (default derived: 0.15)
	// RouteCapacityFactor scales the global router's edge capacities.
	// The default 0.8 is calibrated so the baseline flow is marginally
	// routable on the suite's mid-size designs (peak usage ≈ 1.2–1.5):
	// routability comparisons need observable overflow, and this is the
	// regime routability-driven placement papers evaluate in.
	RouteCapacityFactor float64
	// Obs, when non-nil, records evaluation spans and counters into the
	// flight recorder.
	Obs *obs.Recorder
	// Workers is the worker count for the parallel estimators (Steiner
	// wirelength, RUDY): 0 means GOMAXPROCS, 1 runs inline. The report is
	// bit-identical at every worker count.
	Workers int
}

// Evaluate computes the report for a placement.
func Evaluate(nl *netlist.Netlist, pl *netlist.Placement, chip *geom.Core, opt Options) Report {
	if opt.GridDim <= 0 {
		opt.GridDim = 32
	}
	if opt.WireWidth <= 0 {
		opt.WireWidth = 1
	}
	if opt.Capacity <= 0 {
		// A fixed default keeps congestion comparable across placers on the
		// same design; the absolute value only scales the numbers.
		opt.Capacity = 0.15
	}
	sp := opt.Obs.Span("metrics")
	defer sp.End()

	pool := par.New(opt.Workers)
	grid := geom.NewGrid(chip.Region, opt.GridDim, opt.GridDim)
	rudySpan := sp.Child("rudy")
	cm := route.RUDYPool(context.Background(), pool, nl, pl, grid, route.RUDYOptions{
		WireWidth: opt.WireWidth,
		Capacity:  opt.Capacity,
	})
	rudySpan.End()
	if opt.RouteCapacityFactor <= 0 {
		opt.RouteCapacityFactor = 0.8
	}
	// The router pulls the recorder from its context, nesting its own span.
	gr := route.GlobalRouteCtx(obs.NewContext(context.Background(), opt.Obs),
		nl, pl, chip.Region, route.GRouteOptions{
			NX: opt.GridDim, NY: opt.GridDim, WirePitch: opt.WireWidth,
			CapacityFactor: opt.RouteCapacityFactor,
		})
	stSpan := sp.Child("steiner")
	stwl := route.SteinerWLPool(context.Background(), pool, nl, pl)
	stSpan.End()
	rep := Report{
		HPWL:       pl.HPWL(nl),
		SteinerWL:  stwl,
		MaxUtil:    density.MaxUtilization(nl, pl, grid),
		Congestion: cm.Stats(),
		Routed:     *gr,
	}
	sp.Add("overflow_edges", int64(gr.OverflowEdges))
	opt.Obs.Logf(obs.Debug, "metrics", "%s", rep)
	return rep
}

// String is the one-line log form of the report.
func (r Report) String() string {
	return fmt.Sprintf("HPWL=%.0f StWL=%.0f rWL=%.0f rOvfl=%.0f maxUtil=%.2f congACE5=%.2f",
		r.HPWL, r.SteinerWL, r.Routed.WirelengthDB, r.Routed.Overflow, r.MaxUtil, r.Congestion.ACE5)
}
