package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/netlist"
)

func TestEvaluateOnGeneratedDesign(t *testing.T) {
	b := gen.Generate(gen.Config{
		Name: "m", Seed: 5, Bits: 8,
		Units: []gen.UnitKind{gen.Adder}, RandomCells: 150, Pads: 8,
	})
	rep := Evaluate(b.Netlist, b.Placement, b.Core, Options{})
	if rep.HPWL <= 0 || math.IsNaN(rep.HPWL) {
		t.Errorf("HPWL = %g", rep.HPWL)
	}
	// Steiner never below... HPWL counts per-net half-perimeters; Steiner
	// is at least that per net, so totals preserve the inequality.
	if rep.SteinerWL < rep.HPWL-1e-6 {
		t.Errorf("StWL %g < HPWL %g", rep.SteinerWL, rep.HPWL)
	}
	// Routed wirelength includes bin quantization but must be same order.
	if rep.Routed.WirelengthDB <= 0 {
		t.Errorf("routed WL = %g", rep.Routed.WirelengthDB)
	}
	// All cells start stacked at the core center: utilization must peak
	// far above 1.
	if rep.MaxUtil < 1 {
		t.Errorf("MaxUtil = %g for a stacked placement", rep.MaxUtil)
	}
	if rep.Congestion.Max <= 0 {
		t.Error("no congestion measured")
	}
}

func TestEvaluateRespectsOptions(t *testing.T) {
	b := gen.Generate(gen.Config{
		Name: "m2", Seed: 6, Bits: 8,
		Units: nil, RandomCells: 80, Pads: 4,
	})
	loose := Evaluate(b.Netlist, b.Placement, b.Core, Options{RouteCapacityFactor: 4})
	tight := Evaluate(b.Netlist, b.Placement, b.Core, Options{RouteCapacityFactor: 0.2})
	if tight.Routed.Overflow < loose.Routed.Overflow {
		t.Errorf("tighter capacity produced less overflow: %g vs %g",
			tight.Routed.Overflow, loose.Routed.Overflow)
	}
	if loose.Routed.MaxUsage >= tight.Routed.MaxUsage {
		t.Errorf("usage did not scale with capacity: %g vs %g",
			loose.Routed.MaxUsage, tight.Routed.MaxUsage)
	}
}

func TestReportString(t *testing.T) {
	r := Report{HPWL: 123, SteinerWL: 456}
	s := r.String()
	for _, want := range []string{"HPWL=123", "StWL=456", "rWL=", "maxUtil="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestEvaluateEmptyDesign(t *testing.T) {
	nl := netlist.New("empty")
	nl.MustAddCell("only", "STD", 2, 10, false)
	pl := netlist.NewPlacement(nl)
	core := geom.NewCore(geom.NewRect(0, 0, 100, 100), 10, 1)
	rep := Evaluate(nl, pl, core, Options{})
	if rep.HPWL != 0 || rep.SteinerWL != 0 {
		t.Errorf("netless design has wirelength: %+v", rep)
	}
}
