// Package dpplace is the public API of the structure-aware placement
// library — the importable surface of this repository. It re-exports the
// pipeline (core), the benchmark generator (gen), datapath extraction
// (datapath) and the evaluation report (metrics) so downstream users never
// touch the internal tree.
//
// Minimal flow:
//
//	bench := dpplace.Generate(dpplace.BenchConfig{Bits: 16,
//	    Units: []dpplace.UnitKind{dpplace.Adder}, RandomCells: 500})
//	res, err := dpplace.Place(bench.Netlist, bench.Core, bench.Placement,
//	    dpplace.Options{Mode: dpplace.StructureAware})
package dpplace

import (
	"context"
	"io"

	"repro/internal/bookshelf"
	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/place/multilevel"
	"repro/internal/viz"
)

// Re-exported pipeline types.
type (
	// Options configures a placement run; see core.Options.
	Options = core.Options
	// Result is the pipeline outcome; see core.Result.
	Result = core.Result
	// Mode selects baseline or structure-aware placement.
	Mode = core.Mode
	// DegradePolicy selects the reaction to degenerate datapath groups.
	DegradePolicy = core.DegradePolicy
	// Degradation records one graceful-degradation event of a run.
	Degradation = core.Degradation
	// StageTimes carries optional per-stage wall-clock budgets.
	StageTimes = core.StageTimes
	// MultilevelOptions tunes V-cycle clustered global placement; see
	// multilevel.Options (enable via Options.Multilevel).
	MultilevelOptions = multilevel.Options
	// MultilevelResult reports the V-cycle levels; see multilevel.Result.
	MultilevelResult = multilevel.Result

	// Netlist is the design hypergraph.
	Netlist = netlist.Netlist
	// Placement holds per-cell coordinates.
	Placement = netlist.Placement
	// Core is the chip core area and row structure.
	Core = geom.Core

	// BenchConfig describes a synthetic benchmark; see gen.Config.
	BenchConfig = gen.Config
	// Benchmark is a generated design with ground truth.
	Benchmark = gen.Benchmark
	// UnitKind selects a datapath unit archetype.
	UnitKind = gen.UnitKind

	// ExtractOptions controls datapath extraction.
	ExtractOptions = datapath.Options
	// Extraction is the recovered group structure.
	Extraction = datapath.Extraction
	// ExtractionScore is pairwise same-slice precision/recall.
	ExtractionScore = datapath.Score

	// Report is the placement quality summary.
	Report = metrics.Report
	// ReportOptions tunes evaluation.
	ReportOptions = metrics.Options

	// Design bundles a Bookshelf benchmark.
	Design = bookshelf.Design

	// Recorder is the flight recorder: spans, counters, solver telemetry
	// and leveled logging; see obs.Recorder.
	Recorder = obs.Recorder
	// RunReport is the machine-readable run summary; see obs.RunReport.
	RunReport = obs.RunReport
	// TrajectoryPoint is one λ-schedule snapshot; see obs.TrajectoryPoint.
	TrajectoryPoint = obs.TrajectoryPoint
)

// Placement modes.
const (
	Baseline       = core.Baseline
	StructureAware = core.StructureAware
)

// Degradation policies.
const (
	// DegradeFallback places problematic groups as plain cells (default).
	DegradeFallback = core.DegradeFallback
	// DegradeFail aborts with ErrDegenerateGroups instead.
	DegradeFail = core.DegradeFail
)

// Sentinel errors of the pipeline, for errors.Is classification.
var (
	// ErrTimeout marks results cut short by a deadline or budget.
	ErrTimeout = core.ErrTimeout
	// ErrDiverged marks solves abandoned after repeated numerical failure.
	ErrDiverged = core.ErrDiverged
	// ErrDegenerateGroups marks unusable extracted groups under DegradeFail.
	ErrDegenerateGroups = core.ErrDegenerateGroups
	// ErrMalformedInput marks rejected input files.
	ErrMalformedInput = core.ErrMalformedInput
)

// Datapath unit archetypes for the benchmark generator.
const (
	Adder   = gen.Adder
	MuxTree = gen.MuxTree
	Shifter = gen.Shifter
	RegBank = gen.RegBank
)

// NewRecorder returns a disabled flight recorder; attach sinks with
// SetTrace/SetLog or Collect, then thread it into PlaceCtx with WithRecorder.
func NewRecorder() *Recorder {
	return obs.New()
}

// WithRecorder returns ctx carrying rec, so PlaceCtx (and every stage under
// it) records into the flight recorder. Recording is passive: a traced run
// produces a bit-identical placement.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	return obs.NewContext(ctx, rec)
}

// Place runs the full placement pipeline; see core.Place.
func Place(nl *Netlist, chip *Core, initial *Placement, opt Options) (*Result, error) {
	return core.Place(nl, chip, initial, opt)
}

// PlaceCtx is Place with cooperative cancellation; see core.PlaceCtx. On
// deadline expiry the returned Result is non-nil, carries the best iterate
// found with Partial set, and the error wraps ErrTimeout.
func PlaceCtx(ctx context.Context, nl *Netlist, chip *Core, initial *Placement, opt Options) (*Result, error) {
	return core.PlaceCtx(ctx, nl, chip, initial, opt)
}

// Generate builds a synthetic datapath-intensive benchmark; see gen.Generate.
func Generate(cfg BenchConfig) *Benchmark {
	return gen.Generate(cfg)
}

// Extract runs datapath extraction on a netlist; see datapath.Extract.
func Extract(nl *Netlist, opt ExtractOptions) *Extraction {
	return datapath.Extract(nl, opt)
}

// DefaultExtractOptions returns the extraction defaults.
func DefaultExtractOptions() ExtractOptions {
	return datapath.DefaultOptions()
}

// ScoreExtraction compares predicted labels against ground truth.
func ScoreExtraction(truth, got datapath.Labels) ExtractionScore {
	return datapath.Compare(truth, got)
}

// Evaluate computes the quality report of a placement; see metrics.Evaluate.
func Evaluate(nl *Netlist, pl *Placement, chip *Core, opt ReportOptions) Report {
	return metrics.Evaluate(nl, pl, chip, opt)
}

// ReadBookshelf loads a design from a Bookshelf .aux file.
func ReadBookshelf(auxPath string) (*Design, error) {
	return bookshelf.ReadAux(auxPath)
}

// WriteBookshelf writes a design as base.aux (plus referenced files) in dir.
func WriteBookshelf(dir, base string, d *Design) (string, error) {
	return bookshelf.WriteAux(dir, base, d)
}

// WriteSVG renders a placement (optionally with extraction coloring) as SVG.
func WriteSVG(w io.Writer, nl *Netlist, pl *Placement, chip *Core, ext *Extraction, title string) error {
	return viz.WriteSVG(w, nl, pl, chip, viz.Options{Extraction: ext, Title: title})
}
