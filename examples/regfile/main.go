// regfile: sweep the datapath fraction of a register-file-dominated design
// and chart where structure-aware placement starts to pay — the crossover
// the paper's evaluation turns on. For each point the design keeps roughly
// the same cell count while the ratio of register-bank cells to random
// logic grows.
//
//	go run ./examples/regfile
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
)

func main() {
	const totalCells = 1600
	// One 16-bit register bank is ≈ 170 cells.
	const bankCells = 170

	fmt.Printf("%-8s %-8s %10s %10s %12s %12s\n",
		"target", "actual", "HPWL", "routedWL", "ovfl(base)", "ovfl(SA)")
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7} {
		banks := int(frac*totalCells/bankCells + 0.5)
		if banks < 1 {
			banks = 1
		}
		kinds := make([]gen.UnitKind, banks)
		for i := range kinds {
			// Mostly register banks with the occasional adder between them,
			// a register-file + accumulate structure.
			if i%3 == 2 {
				kinds[i] = gen.Adder
			} else {
				kinds[i] = gen.RegBank
			}
		}
		cfg := gen.Config{
			Name:        fmt.Sprintf("rf%.0f", frac*100),
			Seed:        700 + int64(frac*100),
			Bits:        16,
			Units:       kinds,
			RandomCells: totalCells - banks*bankCells,
		}
		bench := gen.Generate(cfg)

		base, err := core.Place(bench.Netlist, bench.Core, bench.Placement,
			core.Options{Mode: core.Baseline})
		if err != nil {
			log.Fatal(err)
		}
		sa, err := core.Place(bench.Netlist, bench.Core, bench.Placement,
			core.Options{Mode: core.StructureAware})
		if err != nil {
			log.Fatal(err)
		}
		baseRep := metrics.Evaluate(bench.Netlist, base.Placement, bench.Core, metrics.Options{})
		saRep := metrics.Evaluate(bench.Netlist, sa.Placement, bench.Core, metrics.Options{})

		fmt.Printf("%-8s %-8s %9.3fx %9.3fx %12.0f %12.0f\n",
			fmt.Sprintf("%.0f%%", frac*100),
			fmt.Sprintf("%.0f%%", bench.DatapathFraction()*100),
			sa.HPWLFinal/base.HPWLFinal,
			saRep.Routed.WirelengthDB/baseRep.Routed.WirelengthDB,
			baseRep.Routed.Overflow, saRep.Routed.Overflow)
	}
	fmt.Println("\nShape to look for: the overflow column favors structure-aware")
	fmt.Println("placement more and more as the register-file fraction grows, while")
	fmt.Println("the HPWL cost stays within a few percent.")
}
