// extraction: run datapath extraction on a netlist whose names have been
// scrambled — the hard case where only structure is available — and score
// the recovered bit slices against the generator's ground truth.
//
//	go run ./examples/extraction
package main

import (
	"fmt"

	"repro/internal/datapath"
	"repro/internal/gen"
)

func main() {
	cfg := gen.Config{
		Name:        "scrambled",
		Seed:        9,
		Bits:        16,
		Units:       []gen.UnitKind{gen.Adder, gen.MuxTree, gen.Shifter, gen.RegBank},
		RandomCells: 600,
		Scramble:    true, // strip every bus index from the net names
	}
	bench := gen.Generate(cfg)
	fmt.Printf("design: %d cells, %d nets, names scrambled\n\n",
		bench.Netlist.NumCells(), bench.Netlist.NumNets())

	// Name-based inference finds nothing on this netlist; structural
	// inference must carry the extraction alone.
	for _, mode := range []struct {
		name string
		opt  datapath.Options
	}{
		{"name-based only", func() datapath.Options {
			o := datapath.DefaultOptions()
			o.UseStructural = false
			return o
		}()},
		{"structural only", func() datapath.Options {
			o := datapath.DefaultOptions()
			o.UseNames = false
			return o
		}()},
		{"both (default)", datapath.DefaultOptions()},
	} {
		ext := datapath.Extract(bench.Netlist, mode.opt)
		score := datapath.Compare(bench.Truth, ext.Labels())
		fmt.Printf("%-18s groups=%d grouped=%d  precision=%.3f recall=%.3f F1=%.3f\n",
			mode.name, len(ext.Groups), ext.NumGrouped(),
			score.Precision, score.Recall, score.F1)
		for i, g := range ext.Groups {
			fmt.Printf("    group %d: %3d bits × %2d stages\n", i, g.Bits(), g.Stages())
		}
	}

	fmt.Println("\nThe same design with names intact:")
	cfg.Scramble = false
	named := gen.Generate(cfg)
	ext := datapath.Extract(named.Netlist, datapath.DefaultOptions())
	score := datapath.Compare(named.Truth, ext.Labels())
	fmt.Printf("%-18s groups=%d grouped=%d  precision=%.3f recall=%.3f F1=%.3f\n",
		"named netlist", len(ext.Groups), ext.NumGrouped(),
		score.Precision, score.Recall, score.F1)
}
