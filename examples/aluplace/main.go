// aluplace: place a 16-bit ALU-style datapath (adder + shifter + operand
// mux + register bank, bus-chained) with both flows, print the side-by-side
// quality comparison, and render an ASCII floorplan of the structure-aware
// result showing the recovered bit-sliced arrays.
//
//	go run ./examples/aluplace
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
)

func main() {
	bench := gen.Generate(gen.Config{
		Name:        "alu16",
		Seed:        42,
		Bits:        16,
		Units:       []gen.UnitKind{gen.MuxTree, gen.Adder, gen.Shifter, gen.RegBank},
		RandomCells: 800,
	})
	fmt.Printf("alu16: %d cells, %d nets, %.0f%% datapath cells\n\n",
		bench.Netlist.NumCells(), bench.Netlist.NumNets(), bench.DatapathFraction()*100)

	type outcome struct {
		res *core.Result
		rep metrics.Report
	}
	run := func(mode core.Mode) outcome {
		res, err := core.Place(bench.Netlist, bench.Core, bench.Placement, core.Options{Mode: mode})
		if err != nil {
			log.Fatalf("%v: %v", mode, err)
		}
		return outcome{res, metrics.Evaluate(bench.Netlist, res.Placement, bench.Core, metrics.Options{})}
	}
	base := run(core.Baseline)
	sa := run(core.StructureAware)

	fmt.Printf("%-22s %12s %12s %8s\n", "metric", "baseline", "struct-aware", "ratio")
	row := func(name string, b, s float64) {
		r := 0.0
		if b != 0 {
			r = s / b
		}
		fmt.Printf("%-22s %12.0f %12.0f %8.3f\n", name, b, s, r)
	}
	row("HPWL", base.res.HPWLFinal, sa.res.HPWLFinal)
	row("Steiner WL", base.rep.SteinerWL, sa.rep.SteinerWL)
	row("routed WL", base.rep.Routed.WirelengthDB, sa.rep.Routed.WirelengthDB)
	row("route overflow", base.rep.Routed.Overflow, sa.rep.Routed.Overflow)
	fmt.Printf("%-22s %12s %12d\n", "aligned groups", "-", len(sa.res.Extraction.Groups))
	fmt.Printf("%-22s %12s %12d\n\n", "grouped cells", "-", sa.res.GroupedCells)

	fmt.Println("structure-aware floorplan (letters = datapath groups, . = random logic):")
	fmt.Println(render(bench, sa.res))
}

// render draws the placement on a coarse character grid.
func render(bench *gen.Benchmark, res *core.Result) string {
	const w, h = 96, 28
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	region := bench.Core.Region
	nl := bench.Netlist
	for i := range nl.Cells {
		if nl.Cells[i].Fixed {
			continue
		}
		x := int((res.Placement.X[i] - region.Lo.X) / region.W() * float64(w-1))
		y := int((res.Placement.Y[i] - region.Lo.Y) / region.H() * float64(h-1))
		if x < 0 || x >= w || y < 0 || y >= h {
			continue
		}
		ch := byte('.')
		if g := res.Extraction.CellGroup[i]; g >= 0 {
			ch = byte('A' + g%26)
		}
		// Groups overwrite random logic so the arrays stay visible.
		if grid[h-1-y][x] == ' ' || grid[h-1-y][x] == '.' {
			grid[h-1-y][x] = ch
		}
	}
	var sb strings.Builder
	sb.WriteString("+" + strings.Repeat("-", w) + "+\n")
	for _, line := range grid {
		sb.WriteString("|")
		sb.Write(line)
		sb.WriteString("|\n")
	}
	sb.WriteString("+" + strings.Repeat("-", w) + "+")
	return sb.String()
}
