// Quickstart: generate a small datapath-intensive design, run the
// structure-aware placement pipeline, and print the quality report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
)

func main() {
	// 1. A benchmark: an 8-bit adder and operand selector chained through
	//    buses, embedded in 400 cells of random logic.
	bench := gen.Generate(gen.Config{
		Name:        "quickstart",
		Seed:        1,
		Bits:        8,
		Units:       []gen.UnitKind{gen.Adder, gen.MuxTree},
		RandomCells: 400,
	})
	fmt.Printf("design: %d cells, %d nets, %.0f%% datapath\n",
		bench.Netlist.NumCells(), bench.Netlist.NumNets(), bench.DatapathFraction()*100)

	// 2. The full structure-aware flow: extraction → aligned analytical
	//    global placement → structure-preserving legalization → detailed
	//    placement. One call.
	res, err := core.Place(bench.Netlist, bench.Core, bench.Placement, core.Options{
		Mode: core.StructureAware,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. What came out.
	fmt.Printf("extracted: %d groups covering %d cells\n",
		len(res.Extraction.Groups), res.GroupedCells)
	for i, g := range res.Extraction.Groups {
		fmt.Printf("  group %d: %d bits x %d stages\n", i, g.Bits(), g.Stages())
	}
	fmt.Printf("HPWL: global %.0f -> legal %.0f -> final %.0f\n",
		res.HPWLGlobal, res.HPWLLegal, res.HPWLFinal)
	fmt.Printf("legal: %v (alignment RMS %.3f — 0 means perfectly bit-aligned)\n",
		res.LegalityChecked, res.AlignmentRMS)

	rep := metrics.Evaluate(bench.Netlist, res.Placement, bench.Core, metrics.Options{})
	fmt.Printf("metrics: %v\n", rep)
	fmt.Printf("time: %.2fs total (extract %.0fms, global %.2fs, legal %.0fms, detail %.0fms)\n",
		res.Times.Total().Seconds(),
		res.Times.Extract.Seconds()*1000,
		res.Times.Global.Seconds(),
		res.Times.Legalize.Seconds()*1000,
		res.Times.Detail.Seconds()*1000)
}
