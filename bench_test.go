// The benchmark harness: one testing.B benchmark per evaluation table and
// figure, living in the public package's external test. Each bench runs the corresponding
// experiment at a reduced (quick) budget and reports the headline quantity
// through b.ReportMetric, so `go test -bench=.` regenerates the shape of
// every result. cmd/experiments prints the full-budget tables.
package dpplace_test

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/datapath"
	"repro/internal/experiments"
	"repro/internal/gen"
)

var quick = experiments.RunOpts{Quick: true}

// benchConfigs is the reduced suite used by the harness (dp01..dp03).
func benchConfigs() []gen.Config {
	return gen.Suite()[:3]
}

// BenchmarkTable1_Stats regenerates the benchmark-statistics table.
func BenchmarkTable1_Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.Table1(benchConfigs())
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2_HPWL regenerates the HPWL/runtime comparison and reports
// the geomean SA/base HPWL ratio over the quick subset (low-fraction
// designs: expect a small premium; see EXPERIMENTS.md for the full suite).
func BenchmarkTable2_HPWL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cases, err := experiments.RunSuite(benchConfigs(), quick)
		if err != nil {
			b.Fatal(err)
		}
		ratio := 1.0
		for _, c := range cases {
			ratio *= c.SA.HPWLFinal / c.Base.HPWLFinal
		}
		ratio = pow(ratio, 1/float64(len(cases)))
		b.ReportMetric(ratio, "hpwl-ratio")
	}
}

// BenchmarkTable3_StWLCongestion reports the geomean SA/base Steiner
// wirelength and ACE5 congestion ratios over the quick subset.
func BenchmarkTable3_StWLCongestion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cases, err := experiments.RunSuite(benchConfigs(), quick)
		if err != nil {
			b.Fatal(err)
		}
		ratio := 1.0
		ace := 0.0
		for _, c := range cases {
			ratio *= c.SARep.SteinerWL / c.BaseRep.SteinerWL
			ace += c.SARep.Congestion.ACE5 / c.BaseRep.Congestion.ACE5
		}
		b.ReportMetric(pow(ratio, 1/float64(len(cases))), "stwl-ratio")
		b.ReportMetric(ace/float64(len(cases)), "ace5-ratio")
	}
}

// BenchmarkTable4_Extraction reports mean extraction F1 in named and
// structural modes (paper shape: both high; named ≥ structural).
func BenchmarkTable4_Extraction(b *testing.B) {
	cfgs := benchConfigs()
	for i := 0; i < b.N; i++ {
		var namedF1, structF1 float64
		for _, cfg := range cfgs {
			bench := gen.Generate(cfg)
			ext := datapath.Extract(bench.Netlist, datapath.DefaultOptions())
			namedF1 += datapath.Compare(bench.Truth, ext.Labels()).F1

			scr := cfg
			scr.Scramble = true
			bs := gen.Generate(scr)
			opt := datapath.DefaultOptions()
			opt.UseNames = false
			extS := datapath.Extract(bs.Netlist, opt)
			structF1 += datapath.Compare(bs.Truth, extS.Labels()).F1
		}
		b.ReportMetric(namedF1/float64(len(cfgs)), "named-f1")
		b.ReportMetric(structF1/float64(len(cfgs)), "struct-f1")
	}
}

// BenchmarkTable5_WAvsLSE reports the WA/LSE HPWL geomean at equal budgets
// (paper-family shape: ≤ 1).
func BenchmarkTable5_WAvsLSE(b *testing.B) {
	cfgs := benchConfigs()[:2]
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Table5(cfgs, quick)
		if err != nil {
			b.Fatal(err)
		}
		// Last row is the geomean.
		geo := tbl.Rows[len(tbl.Rows)-1][3]
		v, err := strconv.ParseFloat(geo, 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v, "wa-lse-ratio")
	}
}

// BenchmarkFigure5_FractionSweep reports the SA/base overflow ratio at the
// highest datapath fraction of the sweep.
func BenchmarkFigure5_FractionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure5(quick)
		if err != nil {
			b.Fatal(err)
		}
		last := tbl.Rows[len(tbl.Rows)-1]
		// The ratio column is "n/a" when the baseline routes overflow-free.
		if v, err := strconv.ParseFloat(last[len(last)-1], 64); err == nil {
			b.ReportMetric(v, "top-ovfl-ratio")
		}
	}
}

// BenchmarkFigure6_Convergence reports the final structure-aware alignment
// RMS of the convergence trace (paper shape: near zero, far below baseline).
func BenchmarkFigure6_Convergence(b *testing.B) {
	cfg := gen.Suite()[2]
	cfg.RandomCells = 400
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure6(cfg, quick)
		if err != nil {
			b.Fatal(err)
		}
		last := tbl.Rows[len(tbl.Rows)-1]
		saAlign, err := strconv.ParseFloat(last[6], 64)
		if err != nil {
			b.Fatal(err)
		}
		baseAlign, err := strconv.ParseFloat(last[3], 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(saAlign, "sa-align-rms")
		b.ReportMetric(baseAlign, "base-align-rms")
	}
}

// BenchmarkFigure7_AlphaSweep reports the spread of legalized HPWL across
// the α sweep (paper shape: an interior optimum exists, so the spread is
// non-trivial).
func BenchmarkFigure7_AlphaSweep(b *testing.B) {
	cfg := gen.Suite()[2]
	cfg.RandomCells = 400
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure7(cfg, quick)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := 1e18, 0.0
		for _, row := range tbl.Rows {
			v, err := strconv.ParseFloat(row[3], 64)
			if err != nil || v <= 0 {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > 0 {
			b.ReportMetric(hi/lo, "alpha-hpwl-spread")
		}
	}
}

func pow(v, p float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Pow(v, p)
}
