GO ?= go

# Minimum acceptable total statement coverage for `make cover`, in percent.
# Measured 81.3% when the floor was set; keep a small margin so unrelated
# refactors don't trip it.
COVER_FLOOR ?= 78

# Where `make bench` generates its design and profiles.
BENCH_DIR ?= /tmp/dpplace-bench

.PHONY: all check fmt fmt-check vet build test race fuzz-smoke cover bench \
	bench-workers bench-kernels bench-congestion bench-smoke bench-diff \
	docs-lint lint lint-github lint-selftest metrics-lint serve-smoke

all: check

check: fmt-check vet build docs-lint lint metrics-lint race fuzz-smoke

# Documentation bar: every package carries a package-level doc comment and
# every exported identifier is documented (internal/tools/docslint — no
# external linter dependency).
docs-lint:
	$(GO) run ./internal/tools/docslint

# Determinism and concurrency bar: internal/tools/placelint rejects map-order
# dependence, par-closure discipline violations, wall-clock/rand reach
# (transitive, via the interprocedural facts engine), exact float comparison,
# severed error chains, allocations on //placelint:hotpath functions,
# impure callees inside par worker closures, and stale suppressions. The
# tree must be clean; safe exceptions carry //placelint:ignore <check>
# <reason>, which also clears the underlying fact for every caller.
lint:
	$(GO) run ./internal/tools/placelint

# Same gate, but emitting GitHub Actions ::error workflow commands so each
# finding annotates its line inline on the pull request. Used by the CI lint
# job; locally `make lint` is friendlier.
lint-github:
	$(GO) run ./internal/tools/placelint -github

# Metrics schema bar: the placelint metricnames check alone, run over the
# packages that register metrics. Fails on duplicate metric registration,
# non-snake_case names or labels, and names built at runtime. (Already part
# of `make lint`; this target isolates the failure for CI log clarity.)
metrics-lint:
	$(GO) run ./internal/tools/placelint -only metricnames ./internal/serve ./internal/obs/metrics ./cmd/dpplaced

# Self-test: placelint must still *catch* each violation class. Every seeded
# testdata package has to make it exit nonzero — a linter that passes its own
# tree but misses real hazards is worse than none.
lint-selftest:
	@for d in internal/tools/placelint/testdata/*/; do \
		$(GO) run ./internal/tools/placelint $$d >/dev/null 2>&1; st=$$?; \
		if [ $$st -ne 1 ]; then \
			echo "FAIL: placelint on $$d exited $$st, want 1 (violations)"; exit 1; \
		fi; \
		echo "placelint rejects $$d (as seeded)"; \
	done

# fmt rewrites; fmt-check only reports, so CI never mutates the tree.
fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Total statement coverage with a floor: fails when coverage regresses below
# COVER_FLOOR%.
cover:
	$(GO) test ./... -coverprofile=coverage.out -covermode=atomic > /dev/null
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t + 0 < f) ? 1 : 0 }' || \
		{ echo "FAIL: coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Benchmarks plus a recorded end-to-end run: the flight recorder's run report
# lands in BENCH_*.json (the machine-readable numbers), the full JSONL trace
# next to it. BenchmarkRecorderDisabled pins the disabled-path cost at
# ns-level and zero allocations.
bench:
	$(GO) test ./internal/obs -run '^$$' -bench 'BenchmarkRecorder' -benchmem
	@mkdir -p $(BENCH_DIR)
	$(GO) run ./cmd/dpgen -name bench -out $(BENCH_DIR) -seed 7 -bits 16 \
		-units adder,regbank -random 600
	$(GO) run ./cmd/dpplace -quiet -mode structure-aware \
		-trace BENCH_structure_aware_trace.jsonl \
		-report BENCH_structure_aware.json $(BENCH_DIR)/bench.aux
	$(GO) run ./cmd/dpplace -quiet -mode baseline \
		-report BENCH_baseline.json $(BENCH_DIR)/bench.aux
	$(GO) run ./cmd/dpplace -quiet -multilevel \
		-report BENCH_multilevel.json $(BENCH_DIR)/bench.aux
	@echo "wrote BENCH_structure_aware.json, BENCH_baseline.json," \
		"BENCH_multilevel.json and BENCH_structure_aware_trace.jsonl"
	$(MAKE) bench-workers
	$(MAKE) bench-kernels
	cp BENCH_kernels_new.json BENCH_kernels.json
	$(MAKE) bench-congestion
	cp BENCH_congestion_new.json BENCH_congestion.json

# SoA solver-kernel microbenchmarks: measure the wirelength and density
# kernels and summarize their ns/op table to BENCH_kernels_new.json
# (dpplace-kernel-bench/v1). `make bench` promotes it to the committed
# BENCH_kernels.json baseline; `make bench-smoke` diffs against that
# baseline instead, failing on a >10% kernel regression.
bench-kernels:
	$(GO) test -run '^$$' -bench 'BenchmarkWAGradSoA' -benchmem \
		./internal/wirelength | tee BENCH_kernels.txt
	$(GO) test -run '^$$' -bench 'BenchmarkDensitySoA' -benchmem \
		./internal/density | tee -a BENCH_kernels.txt
	$(GO) run ./internal/tools/benchsum -kernels BENCH_kernels.txt \
		BENCH_kernels_new.json

# Routability bench: place the bench design with the congestion feedback
# loop on and distill the routed-overflow/HPWL numbers into
# BENCH_congestion_new.json (dpplace-congestion-bench/v1). `make bench`
# promotes it to the committed BENCH_congestion.json baseline;
# `make bench-smoke` diffs against that baseline instead, failing when
# routed overflow regressed >10% at equal-or-better HPWL.
bench-congestion:
	@mkdir -p $(BENCH_DIR)
	$(GO) run ./cmd/dpgen -name bench -out $(BENCH_DIR) -seed 7 -bits 16 \
		-units adder,regbank -random 600
	$(GO) run ./cmd/dpplace -quiet -congestion \
		-report $(BENCH_DIR)/BENCH_congestion_report.json $(BENCH_DIR)/bench.aux
	$(GO) run ./internal/tools/benchsum -congestion \
		$(BENCH_DIR)/BENCH_congestion_report.json BENCH_congestion_new.json

# Worker-count sweep: place the same design at -workers 1,2,4,8, record one
# run report each, then let benchsum fill parallel_speedup (global-stage
# wall clock relative to the workers=1 run) into every report. Placements
# are bit-identical across the sweep, so only the timings move.
bench-workers:
	@mkdir -p $(BENCH_DIR)
	@for w in 1 2 4 8; do \
		$(GO) run ./cmd/dpplace -quiet -workers $$w \
			-report BENCH_workers_$$w.json $(BENCH_DIR)/bench.aux || exit 1; \
	done
	$(GO) run ./internal/tools/benchsum BENCH_workers_1.json BENCH_workers_2.json \
		BENCH_workers_4.json BENCH_workers_8.json

# One iteration of every benchmark: catches bit-rot in benchmark code
# without paying for real measurements. CI runs this on every push. The
# kernel microbenchmarks additionally run for real and gate against the
# committed baseline (>10% ns/op regression on any kernel fails).
bench-smoke:
	$(GO) test ./... -run '^$$' -bench . -benchtime=1x
	$(MAKE) bench-kernels
	$(GO) run ./internal/tools/benchsum -diff BENCH_kernels.json \
		BENCH_kernels_new.json
	$(MAKE) bench-congestion
	$(GO) run ./internal/tools/benchsum -diff BENCH_congestion.json \
		BENCH_congestion_new.json

# Regression gate between two recorded runs: compares OLD and NEW run
# reports (dpplace-run-report/v1, e.g. two BENCH_structure_aware.json from
# different commits) stage by stage and fails when NEW's total stage time
# exceeds OLD's by more than 10%.
bench-diff:
	@test -n "$(OLD)" -a -n "$(NEW)" || \
		{ echo "usage: make bench-diff OLD=old.json NEW=new.json"; exit 2; }
	$(GO) run ./internal/tools/benchsum -diff $(OLD) $(NEW)

# Short smoke run of each native fuzz target (go allows one -fuzz per
# invocation, so they run sequentially).
fuzz-smoke:
	$(GO) test ./internal/bookshelf -run '^$$' -fuzz '^FuzzReadAux$$' -fuzztime=10s
	$(GO) test ./internal/bookshelf -run '^$$' -fuzz '^FuzzReadNodes$$' -fuzztime=10s
	$(GO) test ./internal/bookshelf -run '^$$' -fuzz '^FuzzReadNets$$' -fuzztime=10s
	$(GO) test ./internal/serve -run '^$$' -fuzz '^FuzzDecodeSpec$$' -fuzztime=10s
	$(GO) test ./internal/serve -run '^$$' -fuzz '^FuzzBuildDesignAux$$' -fuzztime=10s

# Daemon smoke: build dpplaced and run it through two scripted lifetimes.
# Phase 1 places an example netlist end to end over HTTP, validates the
# run-report (metrics_snapshot included) and placement artifacts, scrapes
# /metrics for the core series (two idle scrapes must be byte-identical),
# then SIGTERMs and asserts a clean drain. Phase 2 reboots on the same data
# dir with a short -drain-timeout, SIGTERMs mid-job, and asserts /readyz
# flips to 503 before the job finishes, /metrics serves through the drain,
# and the forced drain exits 3.
serve-smoke:
	@mkdir -p /tmp/dpplaced-smoke
	$(GO) build -o /tmp/dpplaced-smoke/dpplaced ./cmd/dpplaced
	$(GO) run ./internal/tools/servesmoke -bin /tmp/dpplaced-smoke/dpplaced \
		-data /tmp/dpplaced-smoke/data
