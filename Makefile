GO ?= go

.PHONY: all check fmt vet build test race fuzz-smoke

all: check

check: fmt vet build race fuzz-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short smoke run of each native fuzz target (go allows one -fuzz per
# invocation, so they run sequentially).
fuzz-smoke:
	$(GO) test ./internal/bookshelf -run '^$$' -fuzz '^FuzzReadAux$$' -fuzztime=10s
	$(GO) test ./internal/bookshelf -run '^$$' -fuzz '^FuzzReadNodes$$' -fuzztime=10s
	$(GO) test ./internal/bookshelf -run '^$$' -fuzz '^FuzzReadNets$$' -fuzztime=10s
