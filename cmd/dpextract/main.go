// Command dpextract runs datapath extraction on a Bookshelf design and
// reports the recovered groups.
//
// Usage:
//
//	dpextract [-structural-only] [-min-bits 4] [-min-stages 2] design.aux
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bookshelf"
	"repro/internal/datapath"
)

func main() {
	structOnly := flag.Bool("structural-only", false, "ignore net names (pure structural inference)")
	minBits := flag.Int("min-bits", 4, "minimum slice count per group")
	minStages := flag.Int("min-stages", 2, "minimum columns per group")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dpextract [flags] design.aux")
		os.Exit(2)
	}

	d, err := bookshelf.ReadAux(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	opt := datapath.DefaultOptions()
	opt.MinBits = *minBits
	opt.MinStages = *minStages
	if *structOnly {
		opt.UseNames = false
	}

	ext := datapath.Extract(d.Netlist, opt)
	fmt.Printf("design %s: %d cells, %d nets\n",
		d.Netlist.Name, d.Netlist.NumCells(), d.Netlist.NumNets())
	fmt.Printf("extracted %d groups covering %d cells (%.1f%% of movable)\n",
		len(ext.Groups), ext.NumGrouped(),
		100*float64(ext.NumGrouped())/float64(max(1, d.Netlist.NumMovable())))
	for gi, g := range ext.Groups {
		fmt.Printf("  group %2d: %3d bits x %3d stages (%d cells)\n",
			gi, g.Bits(), g.Stages(), g.NumCells())
	}
}
