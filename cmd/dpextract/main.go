// Command dpextract runs datapath extraction on a Bookshelf design and
// reports the recovered groups.
//
// Usage:
//
//	dpextract [-structural-only] [-min-bits 4] [-min-stages 2] [-quiet] design.aux
//
// The per-group breakdown prints by default; -quiet restricts output to the
// one-line summary.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bookshelf"
	"repro/internal/datapath"
	"repro/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	structOnly := flag.Bool("structural-only", false, "ignore net names (pure structural inference)")
	minBits := flag.Int("min-bits", 4, "minimum slice count per group")
	minStages := flag.Int("min-stages", 2, "minimum columns per group")
	quiet := flag.Bool("quiet", false, "summary line only")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dpextract [flags] design.aux")
		return 2
	}

	rec := obs.New()
	rec.SetLog(os.Stderr, obs.Info)

	d, err := bookshelf.ReadAux(flag.Arg(0))
	if err != nil {
		rec.Logf(obs.Error, "dpextract", "%v", err)
		return 1
	}
	opt := datapath.DefaultOptions()
	opt.MinBits = *minBits
	opt.MinStages = *minStages
	if *structOnly {
		opt.UseNames = false
	}

	sw := obs.StartStopwatch()
	ext := datapath.Extract(d.Netlist, opt)
	rec.Logf(obs.Debug, "dpextract", "extraction took %.3fs", sw.Seconds())

	fmt.Printf("design %s: %d cells, %d nets\n",
		d.Netlist.Name, d.Netlist.NumCells(), d.Netlist.NumNets())
	fmt.Printf("extracted %d groups covering %d cells (%.1f%% of movable)\n",
		len(ext.Groups), ext.NumGrouped(),
		100*float64(ext.NumGrouped())/float64(max(1, d.Netlist.NumMovable())))
	if *quiet {
		return 0
	}
	for gi, g := range ext.Groups {
		fmt.Printf("  group %2d: %3d bits x %3d stages (%d cells)\n",
			gi, g.Bits(), g.Stages(), g.NumCells())
	}
	return 0
}
