package main

import (
	"bufio"
	"bytes"
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"
)

// registered returns the set of flag names declared by registerFlags.
func registered(t *testing.T) map[string]bool {
	t.Helper()
	fs := flag.NewFlagSet("dpplace", flag.ContinueOnError)
	registerFlags(fs)
	names := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { names[f.Name] = true })
	return names
}

// TestUsageGroupsCoverAllFlags asserts every registered flag appears in
// exactly one usage group, and every grouped name is a real flag — so the
// themed -h output can never silently drop a flag.
func TestUsageGroupsCoverAllFlags(t *testing.T) {
	names := registered(t)
	seen := map[string]string{}
	for _, g := range flagGroups {
		for _, name := range g.names {
			if !names[name] {
				t.Errorf("group %q lists unknown flag -%s", g.title, name)
			}
			if prev, dup := seen[name]; dup {
				t.Errorf("flag -%s appears in groups %q and %q", name, prev, g.title)
			}
			seen[name] = g.title
		}
	}
	for name := range names {
		if _, ok := seen[name]; !ok {
			t.Errorf("flag -%s is registered but missing from every usage group", name)
		}
	}
}

// TestUsageTextListsAllFlags renders the grouped usage and checks each flag
// and each group title actually appears in it.
func TestUsageTextListsAllFlags(t *testing.T) {
	fs := flag.NewFlagSet("dpplace", flag.ContinueOnError)
	registerFlags(fs)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	printUsage(fs)
	text := buf.String()
	for _, g := range flagGroups {
		if !strings.Contains(text, g.title+":") {
			t.Errorf("usage text is missing the %q group header", g.title)
		}
	}
	for name := range registered(t) {
		if !strings.Contains(text, "\n  -"+name+"\n") {
			t.Errorf("usage text is missing -%s", name)
		}
	}
}

// TestReadmeFlagTableMatchesFlags is the drift test between the README's
// dpplace flag tables and the flags the binary registers: every table row
// must name a real flag, and every flag must have a row.
func TestReadmeFlagTableMatchesFlags(t *testing.T) {
	f, err := os.Open("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// A dpplace flag row looks like "| `-name` | effect |". The README also
	// documents other tools' flags inline in prose-style cells; only leading
	// backticked flag cells count as rows of the dpplace tables.
	row := regexp.MustCompile("^\\| `-([a-z-]+)` \\|")
	documented := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if m := row.FindStringSubmatch(sc.Text()); m != nil {
			documented[m[1]] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	names := registered(t)
	for name := range names {
		if !documented[name] {
			t.Errorf("flag -%s is registered but has no row in README.md", name)
		}
	}
	for name := range documented {
		if !names[name] {
			t.Errorf("README.md documents -%s but dpplace does not register it", name)
		}
	}
}
