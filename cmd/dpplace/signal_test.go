package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/bookshelf"
	"repro/internal/gen"
)

var placeBuildOnce sync.Once
var placeBin string
var placeBuildErr error

func placeBinary(t *testing.T) string {
	t.Helper()
	placeBuildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dpplace-bin")
		if err != nil {
			placeBuildErr = err
			return
		}
		placeBin = filepath.Join(dir, "dpplace")
		out, err := exec.Command("go", "build", "-o", placeBin, ".").CombinedOutput()
		if err != nil {
			placeBuildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if placeBuildErr != nil {
		t.Fatal(placeBuildErr)
	}
	return placeBin
}

// TestInterruptExitsSixWithPartialReport SIGINTs a grinding run and asserts
// the interrupted-partial contract: exit code 6 and a run report classifying
// the stop as "interrupted" rather than a timeout or an error.
func TestInterruptExitsSixWithPartialReport(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	b := gen.Generate(gen.Config{
		Name: "grinder", Seed: 7, Bits: 8,
		Units:       []gen.UnitKind{gen.Adder, gen.MuxTree},
		RandomCells: 2500, Pads: 16,
	})
	aux, err := bookshelf.WriteAux(dir, "grinder",
		&bookshelf.Design{Netlist: b.Netlist, Placement: b.Placement, Core: b.Core})
	if err != nil {
		t.Fatal(err)
	}

	report := filepath.Join(dir, "rep.json")
	cmd := exec.Command(placeBinary(t),
		"-outer", "2000", "-inner", "200", "-quiet",
		"-report", report, "-out", filepath.Join(dir, "out.pl"), aux)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the run time to get into the solver, then interrupt it.
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != exitInterrupted {
		t.Fatalf("interrupted run: %v, want exit %d", err, exitInterrupted)
	}

	repB, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("interrupted run wrote no report: %v", err)
	}
	var rep struct {
		Schema  string `json:"schema"`
		Exit    string `json:"exit"`
		Partial bool   `json:"partial"`
	}
	if err := json.Unmarshal(repB, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "dpplace-run-report/v1" {
		t.Errorf("report schema = %q", rep.Schema)
	}
	if rep.Exit != "interrupted" {
		t.Errorf("report exit = %q, want interrupted", rep.Exit)
	}
	if !rep.Partial {
		t.Error("report does not mark the result partial")
	}
}
