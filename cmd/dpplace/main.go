// Command dpplace places a Bookshelf design with the structure-aware flow
// (or the generic baseline) and writes the legal placement back out.
//
// Usage:
//
//	dpplace [-mode structure-aware|baseline] [-model wa|lse] [-out out.pl]
//	        [-outer 24] [-inner 50] [-timeout 0] [-on-degrade fallback|fail]
//	        design.aux
//
// Exit codes classify the failure so scripts can react without parsing
// stderr:
//
//	0  success (possibly with recorded degradations under -on-degrade fallback)
//	1  unexpected error
//	2  usage error
//	3  deadline exceeded (-timeout); a legal partial result, when one
//	   exists, is still written to -out
//	4  malformed input file
//	5  degenerate datapath groups under -on-degrade fail
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/bookshelf"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/place/global"
	"repro/internal/viz"
)

// Exit codes.
const (
	exitOK         = 0
	exitError      = 1
	exitUsage      = 2
	exitTimeout    = 3
	exitMalformed  = 4
	exitDegenerate = 5
)

func fatal(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dpplace: "+format+"\n", args...)
	os.Exit(code)
}

// classify maps a pipeline error to its exit code.
func classify(err error) int {
	switch {
	case errors.Is(err, core.ErrTimeout):
		return exitTimeout
	case errors.Is(err, core.ErrMalformedInput):
		return exitMalformed
	case errors.Is(err, core.ErrDegenerateGroups):
		return exitDegenerate
	default:
		return exitError
	}
}

func main() {
	mode := flag.String("mode", "structure-aware", "placement mode: structure-aware or baseline")
	model := flag.String("model", "wa", "smooth wirelength model: wa or lse")
	outPl := flag.String("out", "", "output .pl path (default: stdout summary only)")
	outSVG := flag.String("svg", "", "render the final placement to this SVG path")
	outer := flag.Int("outer", 24, "max outer (λ-schedule) iterations")
	inner := flag.Int("inner", 50, "conjugate-gradient iterations per stage")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole pipeline (0 = none)")
	onDegrade := flag.String("on-degrade", "fallback",
		"reaction to degenerate/diverging datapath groups: fallback (place them as plain cells) or fail")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dpplace [flags] design.aux")
		os.Exit(exitUsage)
	}

	d, err := bookshelf.ReadAux(flag.Arg(0))
	if err != nil {
		fatal(classify(err), "%v", err)
	}
	if d.Core == nil {
		fatal(exitMalformed, "design has no .scl row definition")
	}

	opt := core.Options{
		Timeout: *timeout,
		Global: global.Options{
			WLModel:       *model,
			MaxOuterIters: *outer,
			InnerIters:    *inner,
		},
	}
	switch *mode {
	case "structure-aware":
		opt.Mode = core.StructureAware
	case "baseline":
		opt.Mode = core.Baseline
	default:
		fatal(exitUsage, "unknown mode %q", *mode)
	}
	switch *onDegrade {
	case "fallback":
		opt.OnDegrade = core.DegradeFallback
	case "fail":
		opt.OnDegrade = core.DegradeFail
	default:
		fatal(exitUsage, "unknown -on-degrade policy %q", *onDegrade)
	}

	res, err := core.Place(d.Netlist, d.Core, d.Placement, opt)
	if err != nil && res == nil {
		fatal(classify(err), "%v", err)
	}

	fmt.Printf("mode:            %s\n", opt.Mode)
	if res.Extraction != nil {
		fmt.Printf("groups:          %d (%d cells)\n", len(res.Extraction.Groups), res.GroupedCells)
	}
	fmt.Printf("HPWL global:     %.0f\n", res.HPWLGlobal)
	if res.LegalityChecked {
		fmt.Printf("HPWL legal:      %.0f\n", res.HPWLLegal)
		fmt.Printf("HPWL final:      %.0f\n", res.HPWLFinal)
		rep := metrics.Evaluate(d.Netlist, res.Placement, d.Core, metrics.Options{})
		fmt.Printf("StWL final:      %.0f\n", rep.SteinerWL)
		fmt.Printf("congestion ACE5: %.2f\n", rep.Congestion.ACE5)
	}
	fmt.Printf("time:            %.2fs (extract %.2fs, global %.2fs, legal %.2fs, detail %.2fs)\n",
		res.Times.Total().Seconds(), res.Times.Extract.Seconds(),
		res.Times.Global.Seconds(), res.Times.Legalize.Seconds(), res.Times.Detail.Seconds())

	diag := res.GlobalResult.Diagnostics
	if diag.Recoveries > 0 || diag.Rollbacks > 0 || diag.ReAnneals > 0 {
		fmt.Printf("recoveries:      %d solver, %d rollbacks, %d re-anneals\n",
			diag.Recoveries, diag.Rollbacks, diag.ReAnneals)
	}
	for _, deg := range res.Degradations {
		if deg.Group >= 0 {
			fmt.Printf("degraded:        %s group %d: %s\n", deg.Stage, deg.Group, deg.Reason)
		} else {
			fmt.Printf("degraded:        %s: %s\n", deg.Stage, deg.Reason)
		}
	}
	if res.Partial {
		fmt.Printf("partial:         pipeline stopped at the deadline\n")
	}

	if *outSVG != "" {
		f, ferr := os.Create(*outSVG)
		if ferr != nil {
			fatal(exitError, "%v", ferr)
		}
		if werr := viz.WriteSVG(f, d.Netlist, res.Placement, d.Core, viz.Options{
			Extraction: res.Extraction,
			Title:      fmt.Sprintf("%s — %s, HPWL %.0f", d.Netlist.Name, opt.Mode, res.HPWLFinal),
		}); werr != nil {
			f.Close()
			fatal(exitError, "%v", werr)
		}
		if cerr := f.Close(); cerr != nil {
			fatal(exitError, "%v", cerr)
		}
		fmt.Printf("svg:             %s\n", *outSVG)
	}
	// A partial placement is only written when it is known legal — never
	// hand a corrupt .pl to downstream tools.
	if *outPl != "" {
		if res.Partial && !res.LegalityChecked {
			fmt.Fprintf(os.Stderr, "dpplace: partial result is not legal; not writing %s\n", *outPl)
		} else {
			f, ferr := os.Create(*outPl)
			if ferr != nil {
				fatal(exitError, "%v", ferr)
			}
			if werr := bookshelf.WritePl(f, d.Netlist, res.Placement); werr != nil {
				f.Close()
				fatal(exitError, "%v", werr)
			}
			if cerr := f.Close(); cerr != nil {
				fatal(exitError, "%v", cerr)
			}
			fmt.Printf("placement:       %s\n", *outPl)
		}
	}
	if err != nil {
		fatal(classify(err), "%v", err)
	}
}
