// Command dpplace places a Bookshelf design with the structure-aware flow
// (or the generic baseline) and writes the legal placement back out.
//
// Usage:
//
//	dpplace [-mode structure-aware|baseline] [-model wa|lse] [-out out.pl]
//	        [-outer 24] [-inner 50] design.aux
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bookshelf"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/place/global"
	"repro/internal/viz"
)

func main() {
	mode := flag.String("mode", "structure-aware", "placement mode: structure-aware or baseline")
	model := flag.String("model", "wa", "smooth wirelength model: wa or lse")
	outPl := flag.String("out", "", "output .pl path (default: stdout summary only)")
	outSVG := flag.String("svg", "", "render the final placement to this SVG path")
	outer := flag.Int("outer", 24, "max outer (λ-schedule) iterations")
	inner := flag.Int("inner", 50, "conjugate-gradient iterations per stage")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dpplace [flags] design.aux")
		os.Exit(2)
	}

	d, err := bookshelf.ReadAux(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	if d.Core == nil {
		log.Fatal("dpplace: design has no .scl row definition")
	}

	opt := core.Options{
		Global: global.Options{
			WLModel:       *model,
			MaxOuterIters: *outer,
			InnerIters:    *inner,
		},
	}
	switch *mode {
	case "structure-aware":
		opt.Mode = core.StructureAware
	case "baseline":
		opt.Mode = core.Baseline
	default:
		log.Fatalf("dpplace: unknown mode %q", *mode)
	}

	res, err := core.Place(d.Netlist, d.Core, d.Placement, opt)
	if err != nil {
		log.Fatal(err)
	}
	rep := metrics.Evaluate(d.Netlist, res.Placement, d.Core, metrics.Options{})

	fmt.Printf("mode:            %s\n", opt.Mode)
	if res.Extraction != nil {
		fmt.Printf("groups:          %d (%d cells)\n", len(res.Extraction.Groups), res.GroupedCells)
	}
	fmt.Printf("HPWL global:     %.0f\n", res.HPWLGlobal)
	fmt.Printf("HPWL legal:      %.0f\n", res.HPWLLegal)
	fmt.Printf("HPWL final:      %.0f\n", res.HPWLFinal)
	fmt.Printf("StWL final:      %.0f\n", rep.SteinerWL)
	fmt.Printf("congestion ACE5: %.2f\n", rep.Congestion.ACE5)
	fmt.Printf("time:            %.2fs (extract %.2fs, global %.2fs, legal %.2fs, detail %.2fs)\n",
		res.Times.Total().Seconds(), res.Times.Extract.Seconds(),
		res.Times.Global.Seconds(), res.Times.Legalize.Seconds(), res.Times.Detail.Seconds())

	if *outSVG != "" {
		f, err := os.Create(*outSVG)
		if err != nil {
			log.Fatal(err)
		}
		if err := viz.WriteSVG(f, d.Netlist, res.Placement, d.Core, viz.Options{
			Extraction: res.Extraction,
			Title:      fmt.Sprintf("%s — %s, HPWL %.0f", d.Netlist.Name, opt.Mode, res.HPWLFinal),
		}); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("svg:             %s\n", *outSVG)
	}
	if *outPl != "" {
		f, err := os.Create(*outPl)
		if err != nil {
			log.Fatal(err)
		}
		if err := bookshelf.WritePl(f, d.Netlist, res.Placement); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("placement:       %s\n", *outPl)
	}
}
