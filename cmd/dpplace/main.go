// Command dpplace places a Bookshelf design with the structure-aware flow
// (or the generic baseline) and writes the legal placement back out.
//
// Usage:
//
//	dpplace [-mode structure-aware|baseline] [-model wa|lse] [-out out.pl]
//	        [-outer 24] [-inner 50] [-timeout 0] [-on-degrade fallback|fail]
//	        [-congestion] [-inflate-max 2.0]
//	        [-multilevel] [-cluster-ratio 0.22] [-levels 0] [-workers N]
//	        [-trace run.jsonl] [-report out.json] [-v] [-quiet]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-pprof :6060]
//	        design.aux
//
// Routability: -congestion turns on the congestion feedback loop inside
// global placement — periodic RUDY snapshots inflate the modeled area of
// cells sitting in over-demand bins (monotone, capped at -inflate-max) so the
// density spreader reserves routing space where wiring is densest. The loop
// is deterministic and keeps placements bit-identical at every -workers
// setting; run reports gain a `congestion` block with the overflow
// trajectory.
//
// Performance: -workers shards the analytical placer's hot paths (WA
// wirelength, density, routing estimates) across a bounded worker pool.
// 0 (the default) uses every core; 1 runs the exact serial path. The
// placement is bit-identical at every worker count — parallelism only
// trades wall clock for cores — so sweeping -workers is always safe.
// -multilevel replaces the flat global-placement stage with the V-cycle:
// connectivity-driven coarsening (extracted datapath groups stay atomic),
// a cheap solve of the coarsest cluster netlist, then interpolation and
// warm-started refinement level by level — the scale lever for large
// designs. -cluster-ratio and -levels tune the hierarchy.
//
// Observability: -trace writes the flight-recorder JSONL trace (stage spans,
// per-iteration solver telemetry, λ-schedule trajectory, health events);
// -report writes a machine-readable run report (final metrics, per-stage
// timings, counters, degradations, exit classification). -v enables debug
// logging, -quiet restricts stderr to warnings and suppresses the stdout
// summary. The pprof flags profile the run or serve net/http/pprof live.
// With all observability flags off the recorder is disabled and the
// placement is bit-identical to an uninstrumented run.
//
// Exit codes classify the failure so scripts can react without parsing
// stderr:
//
//	0  success (possibly with recorded degradations under -on-degrade fallback)
//	1  unexpected error
//	2  usage error
//	3  deadline exceeded (-timeout); a legal partial result, when one
//	   exists, is still written to -out
//	4  malformed input file
//	5  degenerate datapath groups under -on-degrade fail
//	6  interrupted (SIGINT/SIGTERM); the best-iterate partial placement and
//	   the run report are still written, same as a deadline stop
//
// A single SIGINT or SIGTERM stops the run cooperatively at the next solver
// checkpoint — the run keeps its best iterate, writes every requested
// artifact that is safe to write, and exits 6. A second signal kills the
// process immediately.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/bookshelf"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/place/congestion"
	"repro/internal/place/global"
	"repro/internal/place/multilevel"
	"repro/internal/viz"
)

// Exit codes.
const (
	exitOK          = 0
	exitError       = 1
	exitUsage       = 2
	exitTimeout     = 3
	exitMalformed   = 4
	exitDegenerate  = 5
	exitInterrupted = 6
)

// classify maps a pipeline error to its exit code.
func classify(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, core.ErrTimeout):
		return exitTimeout
	case errors.Is(err, core.ErrMalformedInput):
		return exitMalformed
	case errors.Is(err, core.ErrDegenerateGroups):
		return exitDegenerate
	default:
		return exitError
	}
}

// exitName is the run report's machine-readable exit classification.
func exitName(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, core.ErrTimeout):
		return "timeout"
	case errors.Is(err, core.ErrDiverged):
		return "diverged"
	case errors.Is(err, core.ErrDegenerateGroups):
		return "degenerate-groups"
	case errors.Is(err, core.ErrMalformedInput):
		return "malformed-input"
	default:
		return "error"
	}
}

func main() {
	os.Exit(run())
}

// cliFlags holds every dpplace flag value. Flags are registered through
// registerFlags so the usage text and the README drift test share one source
// of truth.
type cliFlags struct {
	mode         *string
	model        *string
	outPl        *string
	outSVG       *string
	outer        *int
	inner        *int
	timeout      *time.Duration
	onDegrade    *string
	congestion   *bool
	inflateMax   *float64
	multilevel   *bool
	clusterRatio *float64
	levels       *int
	workers      *int
	tracePath    *string
	reportPath   *string
	verbose      *bool
	quiet        *bool
	cpuProfile   *string
	memProfile   *string
	pprofAddr    *string
}

// flagGroups themes the usage text. Every registered flag must appear in
// exactly one group (TestUsageGroupsCoverAllFlags enforces it).
var flagGroups = []struct {
	title string
	names []string
}{
	{"Run control", []string{"mode", "model", "out", "svg", "outer", "inner", "timeout", "on-degrade", "congestion", "inflate-max"}},
	{"Performance", []string{"multilevel", "cluster-ratio", "levels", "workers", "cpuprofile", "memprofile", "pprof"}},
	{"Observability", []string{"trace", "report", "v", "quiet"}},
}

// registerFlags declares dpplace's flags on fs and returns their values.
func registerFlags(fs *flag.FlagSet) *cliFlags {
	f := &cliFlags{}
	f.mode = fs.String("mode", "structure-aware", "placement mode: structure-aware or baseline")
	f.model = fs.String("model", "wa", "smooth wirelength model: wa or lse")
	f.outPl = fs.String("out", "", "output .pl path (default: stdout summary only)")
	f.outSVG = fs.String("svg", "", "render the final placement to this SVG path")
	f.outer = fs.Int("outer", 24, "max outer (λ-schedule) iterations")
	f.inner = fs.Int("inner", 50, "conjugate-gradient iterations per stage")
	f.timeout = fs.Duration("timeout", 0, "wall-clock budget for the whole pipeline (0 = none)")
	f.onDegrade = fs.String("on-degrade", "fallback",
		"reaction to degenerate/diverging datapath groups: fallback (place them as plain cells) or fail")
	f.congestion = fs.Bool("congestion", false,
		"congestion feedback inside global placement: periodic RUDY snapshots inflate cells in over-demand bins so the spreader reserves routing space")
	f.inflateMax = fs.Float64("inflate-max", 2.0,
		"cap on the per-cell congestion area multiplier (with -congestion)")
	f.multilevel = fs.Bool("multilevel", false,
		"V-cycle clustered global placement: coarsen the netlist (datapath groups stay atomic), place the clusters, interpolate and refine level by level")
	f.clusterRatio = fs.Float64("cluster-ratio", 0.22,
		"target per-level coarsening ratio, coarse/fine movable cells (with -multilevel)")
	f.levels = fs.Int("levels", 0,
		"max coarsening levels, 0 = auto (with -multilevel)")
	f.workers = fs.Int("workers", 0,
		"worker count for the parallel hot paths (0 = all cores, 1 = serial; placements are bit-identical at every setting)")
	f.tracePath = fs.String("trace", "", "write the flight-recorder JSONL trace to this path")
	f.reportPath = fs.String("report", "", "write the machine-readable run report (JSON) to this path")
	f.verbose = fs.Bool("v", false, "debug logging on stderr")
	f.quiet = fs.Bool("quiet", false, "warnings only on stderr; suppress the stdout summary")
	f.cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this path")
	f.memProfile = fs.String("memprofile", "", "write a heap profile to this path at exit")
	f.pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	fs.Usage = func() { printUsage(fs) }
	return f
}

// printUsage writes the themed usage text: flags grouped by what the user is
// trying to do, instead of one flat alphabetical wall.
func printUsage(fs *flag.FlagSet) {
	w := fs.Output()
	fmt.Fprintf(w, "usage: dpplace [flags] design.aux\n\n")
	fmt.Fprintf(w, "Place a Bookshelf design with the structure-aware flow and write the\nlegal placement back out.\n")
	for _, g := range flagGroups {
		fmt.Fprintf(w, "\n%s:\n", g.title)
		for _, name := range g.names {
			fl := fs.Lookup(name)
			if fl == nil {
				continue
			}
			def := ""
			if fl.DefValue != "" && fl.DefValue != "false" && fl.DefValue != "0" && fl.DefValue != "0s" {
				def = fmt.Sprintf(" (default %s)", fl.DefValue)
			}
			fmt.Fprintf(w, "  -%s\n        %s%s\n", fl.Name, fl.Usage, def)
		}
	}
}

// run is main with deferred cleanup intact: profiles and the trace buffer
// flush on every exit path, which os.Exit inside the body would skip.
func run() int {
	f := registerFlags(flag.CommandLine)
	flag.Parse()
	mode, model, outPl, outSVG := f.mode, f.model, f.outPl, f.outSVG
	outer, inner, timeout, onDegrade := f.outer, f.inner, f.timeout, f.onDegrade
	tracePath, reportPath, verbose, quiet := f.tracePath, f.reportPath, f.verbose, f.quiet
	cpuProfile, memProfile, pprofAddr := f.cpuProfile, f.memProfile, f.pprofAddr

	rec := obs.New()
	level := obs.Info
	if *verbose {
		level = obs.Debug
	}
	if *quiet {
		level = obs.Warn
	}
	rec.SetLog(os.Stderr, level)
	fatal := func(code int, format string, args ...any) int {
		rec.Logf(obs.Error, "dpplace", format, args...)
		return code
	}

	if flag.NArg() != 1 {
		flag.Usage()
		return exitUsage
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fatal(exitError, "%v", err)
		}
		bw := bufio.NewWriter(f)
		rec.SetTrace(bw)
		defer func() {
			bw.Flush()
			f.Close()
		}()
	}
	if *reportPath != "" {
		rec.Collect()
	}
	if *pprofAddr != "" {
		rec.Logf(obs.Info, "dpplace", "pprof server on http://%s/debug/pprof/", *pprofAddr)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				rec.Logf(obs.Warn, "dpplace", "pprof server: %v", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fatal(exitError, "%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fatal(exitError, "start CPU profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				rec.Logf(obs.Error, "dpplace", "%v", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				rec.Logf(obs.Error, "dpplace", "write heap profile: %v", err)
			}
			f.Close()
		}()
	}

	d, err := bookshelf.ReadAux(flag.Arg(0))
	if err != nil {
		return fatal(classify(err), "%v", err)
	}
	if d.Core == nil {
		return fatal(exitMalformed, "design has no .scl row definition")
	}

	opt := core.Options{
		Timeout:    *timeout,
		Multilevel: *f.multilevel,
		MultilevelOpts: multilevel.Options{
			ClusterRatio: *f.clusterRatio,
			MaxLevels:    *f.levels,
		},
		Global: global.Options{
			WLModel:       *model,
			MaxOuterIters: *outer,
			InnerIters:    *inner,
			Workers:       *f.workers,
			Congestion: congestion.Options{
				Enable:     *f.congestion,
				MaxInflate: *f.inflateMax,
			},
		},
	}
	switch *mode {
	case "structure-aware":
		opt.Mode = core.StructureAware
	case "baseline":
		opt.Mode = core.Baseline
	default:
		return fatal(exitUsage, "unknown mode %q", *mode)
	}
	switch *onDegrade {
	case "fallback":
		opt.OnDegrade = core.DegradeFallback
	case "fail":
		opt.OnDegrade = core.DegradeFail
	default:
		return fatal(exitUsage, "unknown -on-degrade policy %q", *onDegrade)
	}

	// SIGINT/SIGTERM cancel the run cooperatively: the pipeline stops at its
	// next checkpoint and returns the best iterate with Partial set, exactly
	// like a -timeout stop. NotifyContext unregisters on the first signal,
	// so a second one falls back to default handling and kills the process.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	ctx := obs.NewContext(sigCtx, rec)
	res, err := core.PlaceCtx(ctx, d.Netlist, d.Core, d.Placement, opt)
	interrupted := sigCtx.Err() != nil && err != nil && errors.Is(err, core.ErrTimeout)
	if interrupted {
		rec.Logf(obs.Warn, "dpplace", "interrupted by signal; keeping the best iterate")
	}
	if err != nil && res == nil {
		if interrupted {
			return fatal(exitInterrupted, "%v", err)
		}
		return fatal(classify(err), "%v", err)
	}

	var rep *metrics.Report
	if res.LegalityChecked {
		r := metrics.Evaluate(d.Netlist, res.Placement, d.Core,
			metrics.Options{Obs: rec, Workers: *f.workers})
		rep = &r
	}

	if !*quiet {
		printSummary(os.Stdout, opt.Mode, res, rep)
	}

	if *reportPath != "" {
		exitLabel := exitName(err)
		if interrupted {
			exitLabel = "interrupted"
		}
		if werr := writeReport(*reportPath, d.Netlist.Name, opt.Mode, res, rep, exitLabel, rec); werr != nil {
			return fatal(exitError, "%v", werr)
		}
		rec.Logf(obs.Info, "dpplace", "run report: %s", *reportPath)
	}

	if *outSVG != "" {
		f, ferr := os.Create(*outSVG)
		if ferr != nil {
			return fatal(exitError, "%v", ferr)
		}
		if werr := viz.WriteSVG(f, d.Netlist, res.Placement, d.Core, viz.Options{
			Extraction: res.Extraction,
			Title:      fmt.Sprintf("%s — %s, HPWL %.0f", d.Netlist.Name, opt.Mode, res.HPWLFinal),
		}); werr != nil {
			f.Close()
			return fatal(exitError, "%v", werr)
		}
		if cerr := f.Close(); cerr != nil {
			return fatal(exitError, "%v", cerr)
		}
		if !*quiet {
			fmt.Printf("svg:             %s\n", *outSVG)
		}
	}
	// A partial placement is only written when it is known legal — never
	// hand a corrupt .pl to downstream tools.
	if *outPl != "" {
		if res.Partial && !res.LegalityChecked {
			rec.Logf(obs.Warn, "dpplace", "partial result is not legal; not writing %s", *outPl)
		} else {
			f, ferr := os.Create(*outPl)
			if ferr != nil {
				return fatal(exitError, "%v", ferr)
			}
			if werr := bookshelf.WritePl(f, d.Netlist, res.Placement); werr != nil {
				f.Close()
				return fatal(exitError, "%v", werr)
			}
			if cerr := f.Close(); cerr != nil {
				return fatal(exitError, "%v", cerr)
			}
			if !*quiet {
				fmt.Printf("placement:       %s\n", *outPl)
			}
		}
	}
	if err != nil {
		if interrupted {
			return fatal(exitInterrupted, "%v", err)
		}
		return fatal(classify(err), "%v", err)
	}
	return exitOK
}

// printSummary writes the human-readable result, surfacing degradations and
// health-guard recoveries rather than leaving them buried in the result
// struct.
func printSummary(w *os.File, mode core.Mode, res *core.Result, rep *metrics.Report) {
	fmt.Fprintf(w, "mode:            %s\n", mode)
	if res.Extraction != nil {
		fmt.Fprintf(w, "groups:          %d (%d cells)\n", len(res.Extraction.Groups), res.GroupedCells)
	}
	if res.Multilevel != nil {
		fmt.Fprintf(w, "multilevel:      %d levels (coarsest %d cells, ratio %.2f)\n",
			res.Multilevel.Levels, res.Multilevel.CoarsestCells, res.Multilevel.ClusterRatio)
	}
	fmt.Fprintf(w, "HPWL global:     %.0f\n", res.HPWLGlobal)
	if res.LegalityChecked {
		fmt.Fprintf(w, "HPWL legal:      %.0f\n", res.HPWLLegal)
		fmt.Fprintf(w, "HPWL final:      %.0f\n", res.HPWLFinal)
	}
	if rep != nil {
		fmt.Fprintf(w, "StWL final:      %.0f\n", rep.SteinerWL)
		fmt.Fprintf(w, "congestion ACE5: %.2f\n", rep.Congestion.ACE5)
	}
	fmt.Fprintf(w, "time:            %.2fs (extract %.2fs, global %.2fs, legal %.2fs, detail %.2fs)\n",
		res.Times.Total().Seconds(), res.Times.Extract.Seconds(),
		res.Times.Global.Seconds(), res.Times.Legalize.Seconds(), res.Times.Detail.Seconds())
	if g := res.GlobalResult; g.NetRecomputes+g.NetReuses > 0 {
		fmt.Fprintf(w, "incremental:     dirty-net ratio %.3f (%d full, %d delta evals)\n",
			g.DirtyNetRatio(), g.FullEvals, g.DeltaEvals)
	}
	if c := res.GlobalResult.Congestion; c != nil {
		fmt.Fprintf(w, "congestion:      %d snapshots, %d cells inflated (max ×%.2f)\n",
			c.Snapshots, c.InflatedCells, c.MaxInflation)
	}

	diag := res.GlobalResult.Diagnostics
	if diag.Recoveries > 0 || diag.Rollbacks > 0 || diag.ReAnneals > 0 {
		fmt.Fprintf(w, "recoveries:      %d solver, %d rollbacks, %d re-anneals\n",
			diag.Recoveries, diag.Rollbacks, diag.ReAnneals)
	}
	for _, deg := range res.Degradations {
		if deg.Group >= 0 {
			fmt.Fprintf(w, "degraded:        %s group %d: %s\n", deg.Stage, deg.Group, deg.Reason)
		} else {
			fmt.Fprintf(w, "degraded:        %s: %s\n", deg.Stage, deg.Reason)
		}
	}
	if res.Partial {
		fmt.Fprintf(w, "partial:         pipeline stopped at the deadline\n")
	}
}

// writeReport assembles and writes the machine-readable run report.
// exitLabel is the machine-readable exit classification ("interrupted" for
// signal stops, exitName(err) otherwise).
func writeReport(path, design string, mode core.Mode, res *core.Result, rep *metrics.Report, exitLabel string, rec *obs.Recorder) error {
	counters := rec.Counters()
	if n := faultinject.FiredTotal(); n > 0 {
		counters["fault_injections"] = int64(n)
	}
	out := &obs.RunReport{
		Design:  design,
		Mode:    mode.String(),
		Exit:    exitLabel,
		Partial: res.Partial,
		Workers: res.GlobalResult.Workers,
		HPWL: obs.HPWLSummary{
			Global: res.HPWLGlobal,
			Legal:  res.HPWLLegal,
			Final:  res.HPWLFinal,
		},
		StageSeconds: map[string]float64{
			"extract":  res.Times.Extract.Seconds(),
			"global":   res.Times.Global.Seconds(),
			"legalize": res.Times.Legalize.Seconds(),
			"detail":   res.Times.Detail.Seconds(),
		},
		Counters:        counters,
		Trajectory:      rec.Trajectory(),
		DirtyNetRatio:   res.GlobalResult.DirtyNetRatio(),
		FullRecomputes:  res.GlobalResult.FullEvals,
		DeltaRecomputes: res.GlobalResult.DeltaEvals,
	}
	if res.Multilevel != nil {
		out.Levels = res.Multilevel.Levels
		out.ClusterRatio = res.Multilevel.ClusterRatio
	}
	if c := res.GlobalResult.Congestion; c != nil {
		out.Congestion = c.Report()
	}
	for _, deg := range res.Degradations {
		out.Degradations = append(out.Degradations, obs.DegradeEntry{
			Stage: deg.Stage, Group: deg.Group, Reason: deg.Reason,
		})
	}
	if rep != nil {
		out.Metrics = rep
	}
	return obs.WriteReportFile(path, out)
}
