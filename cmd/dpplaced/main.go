// Command dpplaced is the placement-as-a-service daemon: it accepts job
// specs (generated benchmarks or inline Bookshelf bundles) over HTTP, runs
// them through the structure-aware placement pipeline under a shared worker
// budget, streams per-iteration solver telemetry over SSE, and journals
// every job state transition so a crash or restart never loses work — jobs
// interrupted mid-attempt are requeued and, placements being deterministic,
// re-execute to the identical result.
//
// Usage:
//
//	dpplaced [flags]
//
// Observability surface: GET /metrics serves fleet metrics in Prometheus
// text format (jobs by state, queue depth, latency histograms, journal fsync
// cost, worker-budget occupancy, solver health events); GET /healthz is the
// liveness probe (200 while the process serves); GET /readyz is the
// readiness probe, flipping to 503 the instant a drain begins so load
// balancers shift traffic before in-flight jobs finish.
//
// SIGINT or SIGTERM starts a graceful drain: admission stops (503), running
// jobs finish, the journal is flushed, and the daemon exits 0. A second
// signal — or the -drain-timeout deadline — forces running jobs to
// checkpoint their best iterate and exits 3; the next daemon instance picks
// them back up from the journal. The HTTP surface (probes and /metrics
// included) stays up until the drain settles.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/obs"
	obsmetrics "repro/internal/obs/metrics"
	"repro/internal/serve"
)

// Exit codes.
const (
	exitOK     = 0 // clean drain: every in-flight job finished
	exitError  = 1
	exitUsage  = 2
	exitForced = 3 // forced drain: jobs checkpointed and left for the next instance
)

func main() {
	os.Exit(run())
}

// daemonFlags holds every dpplaced flag value.
type daemonFlags struct {
	addr         *string
	data         *string
	workers      *int
	queue        *int
	maxCells     *int
	jobTimeout   *time.Duration
	retries      *int
	heartbeat    *time.Duration
	drainTimeout *time.Duration
	verbose      *bool
	quiet        *bool
}

// registerFlags declares the flag set.
func registerFlags(fs *flag.FlagSet) *daemonFlags {
	return &daemonFlags{
		addr:         fs.String("addr", "127.0.0.1:7333", "HTTP listen address"),
		data:         fs.String("data", "dpplaced-data", "data directory: job journal and per-job artifacts"),
		workers:      fs.Int("workers", 0, "shared worker budget across concurrent placements (0 = all cores)"),
		queue:        fs.Int("queue", 32, "admission control: max queued jobs before 429"),
		maxCells:     fs.Int("max-cells", 1_000_000, "admission control: max estimated cells per job before 429"),
		jobTimeout:   fs.Duration("job-timeout", 10*time.Minute, "default per-job wall-clock budget"),
		retries:      fs.Int("retries", 2, "max retries of retryable failures per job"),
		heartbeat:    fs.Duration("heartbeat", 10*time.Second, "SSE heartbeat interval"),
		drainTimeout: fs.Duration("drain-timeout", 2*time.Minute, "graceful-drain deadline before running jobs checkpoint"),
		verbose:      fs.Bool("v", false, "verbose (debug) logging"),
		quiet:        fs.Bool("quiet", false, "log warnings and errors only"),
	}
}

// run is main with deferred cleanup intact.
func run() int {
	f := registerFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: dpplaced [flags]\n")
		flag.PrintDefaults()
		return exitUsage
	}

	rec := obs.New()
	level := obs.Info
	if *f.verbose {
		level = obs.Debug
	}
	if *f.quiet {
		level = obs.Warn
	}
	rec.SetLog(os.Stderr, level)
	rec.Collect()
	fatal := func(format string, args ...any) int {
		rec.Logf(obs.Error, "dpplaced", format, args...)
		return exitError
	}

	s, err := serve.New(serve.Config{
		Dir:            *f.data,
		Workers:        *f.workers,
		QueueDepth:     *f.queue,
		MaxCells:       *f.maxCells,
		DefaultTimeout: *f.jobTimeout,
		MaxRetries:     *f.retries,
		Heartbeat:      *f.heartbeat,
		Log:            rec,
		Metrics:        obsmetrics.NewRegistry(),
	})
	if err != nil {
		return fatal("%v", err)
	}

	ln, err := net.Listen("tcp", *f.addr)
	if err != nil {
		return fatal("listen: %v", err)
	}
	// The resolved address (meaningful with -addr :0) lands in the data dir
	// so harnesses can find the daemon without parsing logs.
	addrPath := filepath.Join(*f.data, "dpplaced.addr")
	if err := os.WriteFile(addrPath, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
		return fatal("write addr file: %v", err)
	}
	defer os.Remove(addrPath)

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	s.Start()
	rec.Logf(obs.Info, "dpplaced", "listening on http://%s (data %s, workers %d)",
		ln.Addr(), *f.data, s.Stats().WorkersTotal)

	// First signal: graceful drain. Second signal: force the checkpoint path
	// immediately.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return fatal("http server: %v", err)
	case <-sigCtx.Done():
	}
	stop() // restore default handling so a third signal kills us outright
	rec.Logf(obs.Info, "dpplaced", "signal received; draining (deadline %s, signal again to force)", *f.drainTimeout)

	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *f.drainTimeout)
	defer cancelDrain()
	forceCtx, stopForce := signal.NotifyContext(drainCtx, os.Interrupt, syscall.SIGTERM)
	defer stopForce()

	checkpointed, err := s.Drain(forceCtx)
	if err != nil {
		httpSrv.Close()
		return fatal("drain: %v", err)
	}
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close()
	}
	if checkpointed > 0 {
		rec.Logf(obs.Warn, "dpplaced", "forced drain: %d jobs checkpointed for the next instance", checkpointed)
		return exitForced
	}
	rec.Logf(obs.Info, "dpplaced", "clean drain")
	return exitOK
}
