package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildOnce builds the dpplaced binary one time for the whole test file.
var buildOnce sync.Once
var builtBin string
var buildErr error

func daemonBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dpplaced-bin")
		if err != nil {
			buildErr = err
			return
		}
		builtBin = filepath.Join(dir, "dpplaced")
		cmd := exec.Command("go", "build", "-o", builtBin, ".")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return builtBin
}

// daemon wraps one running dpplaced subprocess.
type daemon struct {
	cmd  *exec.Cmd
	data string
	addr string
	done chan error
}

// startDaemon launches dpplaced on an ephemeral port and waits for the addr
// file to appear.
func startDaemon(t *testing.T, data string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0", "-data", data, "-workers", "1", "-quiet",
	}, extra...)
	cmd := exec.Command(daemonBin(t), args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, data: data, done: make(chan error, 1)}
	go func() { d.done <- cmd.Wait() }()

	addrPath := filepath.Join(data, "dpplaced.addr")
	deadline := time.Now().Add(30 * time.Second)
	for {
		b, err := os.ReadFile(addrPath)
		if err == nil && strings.TrimSpace(string(b)) != "" {
			d.addr = strings.TrimSpace(string(b))
			return d
		}
		select {
		case err := <-d.done:
			t.Fatalf("daemon exited during startup: %v\n%s", err, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote %s\n%s", addrPath, stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

// exitCode waits for the subprocess to exit and returns its code.
func (d *daemon) exitCode(t *testing.T, timeout time.Duration) int {
	t.Helper()
	select {
	case err := <-d.done:
		if err == nil {
			return 0
		}
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return ee.ExitCode()
		}
		t.Fatalf("daemon wait: %v", err)
		return -1
	case <-time.After(timeout):
		d.cmd.Process.Kill()
		t.Fatalf("daemon still running after %v", timeout)
		return -1
	}
}

func postJob(t *testing.T, d *daemon, spec string) string {
	t.Helper()
	resp, err := http.Post(d.url("/jobs"), "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d (%s)", resp.StatusCode, v.Error)
	}
	return v.ID
}

// jobState fetches one job's state string ("" on transport error, so polls
// survive the daemon being killed under them).
func jobState(d *daemon, id string) (state, exit string) {
	resp, err := http.Get(d.url("/jobs/" + id))
	if err != nil {
		return "", ""
	}
	defer resp.Body.Close()
	var v struct {
		State string `json:"state"`
		Exit  string `json:"exit"`
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&v)
	return v.State, v.Exit
}

func waitJobState(t *testing.T, d *daemon, id, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		state, _ := jobState(d, id)
		if state == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (last %q)", id, want, state)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// slowJob runs long enough (seconds) to be killed mid-solve.
const slowJob = `{"name":"grinder","options":{"outer":400,"inner":200},
	"gen":{"seed":7,"bits":8,"units":["adder","muxtree"],"random_cells":2500,"pads":16}}`

// midJob takes around a second: long enough to observe running, short enough
// to re-run quickly after a crash.
const midJob = `{"name":"mid","options":{"outer":20,"inner":20},
	"gen":{"seed":5,"bits":8,"units":["adder"],"random_cells":600,"pads":12}}`

func fetch(t *testing.T, d *daemon, path string) []byte {
	t.Helper()
	resp, err := http.Get(d.url(path))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %.200s", path, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// TestDaemonSIGKILLRecovery is the acceptance crash test: SIGKILL the daemon
// mid-job, restart it on the same data dir, and the journal must requeue the
// job, which completes bit-identically to a never-interrupted run.
func TestDaemonSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	data := t.TempDir()
	d1 := startDaemon(t, data)
	id := postJob(t, d1, midJob)
	waitJobState(t, d1, id, "running", 60*time.Second)

	// SIGKILL: no drain, no journal terminal record, no goodbye.
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-d1.done
	os.Remove(filepath.Join(data, "dpplaced.addr")) // stale addr from the killed run

	d2 := startDaemon(t, data)
	// The replayed job must be requeued (not lost, not stuck running) and
	// then complete.
	waitJobState(t, d2, id, "done", 120*time.Second)
	var view struct {
		Requeued bool `json:"requeued"`
	}
	json.Unmarshal(fetch(t, d2, "/jobs/"+id), &view)
	if !view.Requeued {
		t.Error("recovered job is not marked requeued")
	}
	recovered := fetch(t, d2, "/jobs/"+id+"/placement")

	// Reference run of the same spec, never interrupted.
	refData := t.TempDir()
	ref := startDaemon(t, refData)
	refID := postJob(t, ref, midJob)
	waitJobState(t, ref, refID, "done", 120*time.Second)
	clean := fetch(t, ref, "/jobs/"+refID+"/placement")
	if !bytes.Equal(recovered, clean) {
		t.Error("placement after crash recovery differs from an uninterrupted run")
	}

	// Both daemons drain cleanly on SIGTERM.
	for _, d := range []*daemon{d2, ref} {
		d.cmd.Process.Signal(syscall.SIGTERM)
		if code := d.exitCode(t, 60*time.Second); code != exitOK {
			t.Errorf("clean drain exit code = %d, want %d", code, exitOK)
		}
	}
}

// TestDaemonSIGTERMDrain asserts the graceful path: in-flight jobs finish,
// new submissions bounce with 503, and the daemon exits 0.
func TestDaemonSIGTERMDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	data := t.TempDir()
	d := startDaemon(t, data)
	id := postJob(t, d, midJob)
	waitJobState(t, d, id, "running", 60*time.Second)

	d.cmd.Process.Signal(syscall.SIGTERM)
	// The HTTP surface stays up during the drain and refuses new work.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Post(d.url("/jobs"), "application/json", strings.NewReader(midJob))
		if err != nil {
			// Drain finished and the server closed before we got a 503 in:
			// acceptable, the exit code check below still proves the drain.
			break
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		// A 202 can still slip in during the instants between SIGTERM
		// delivery and the drain flag being set; jobs admitted there are
		// journaled and simply wait for the next instance. The drain must
		// start rejecting promptly, though.
		if time.Now().After(deadline) {
			t.Fatalf("drain never started rejecting submissions (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code := d.exitCode(t, 120*time.Second); code != exitOK {
		t.Fatalf("drain exit code = %d, want %d", code, exitOK)
	}
	// The in-flight job finished before the daemon left.
	d3 := startDaemon(t, data)
	state, exit := jobState(d3, id)
	if state != "done" || exit != "ok" {
		t.Fatalf("in-flight job after drain: state=%s exit=%s, want done/ok", state, exit)
	}
	d3.cmd.Process.Signal(syscall.SIGTERM)
	d3.exitCode(t, 60*time.Second)
}

// TestDaemonForcedDrainCheckpoints covers the second-signal path: a grinding
// job cannot finish, the drain deadline forces a checkpoint, the daemon
// exits 3 and the next instance requeues the job.
func TestDaemonForcedDrainCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	data := t.TempDir()
	d := startDaemon(t, data, "-drain-timeout", "50ms")
	id := postJob(t, d, slowJob)
	waitJobState(t, d, id, "running", 60*time.Second)

	d.cmd.Process.Signal(syscall.SIGTERM)
	if code := d.exitCode(t, 120*time.Second); code != exitForced {
		t.Fatalf("forced drain exit code = %d, want %d", code, exitForced)
	}

	d2 := startDaemon(t, data)
	state, _ := jobState(d2, id)
	if state != "queued" && state != "running" {
		t.Fatalf("checkpointed job after restart: state=%s, want queued or running", state)
	}
	d2.cmd.Process.Signal(syscall.SIGTERM)
	d2.cmd.Process.Signal(syscall.SIGTERM) // force: the grinder is running again
	d2.exitCode(t, 120*time.Second)
}

// TestUsageExitCode: bad flags exit 2.
func TestUsageExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cmd := exec.Command(daemonBin(t), "-no-such-flag")
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != exitUsage {
		t.Fatalf("bad flag: %v, want exit %d", err, exitUsage)
	}
}
