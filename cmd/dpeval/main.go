// Command dpeval scores an existing placement: read a Bookshelf design (and
// optionally a separate .pl with updated positions), check legality, and
// print the full quality report — the tool for comparing placements produced
// by different flows or external placers.
//
// Usage:
//
//	dpeval [-pl other.pl] [-capacity 0.8] design.aux
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/bookshelf"
	"repro/internal/datapath"
	"repro/internal/metrics"
)

func main() {
	plPath := flag.String("pl", "", "override placement from this .pl file")
	capacity := flag.Float64("capacity", 0.8, "global-router capacity factor")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dpeval [flags] design.aux")
		os.Exit(2)
	}

	d, err := bookshelf.ReadAux(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	if d.Core == nil {
		log.Fatal("dpeval: design has no .scl row definition")
	}
	if *plPath != "" {
		f, err := os.Open(*plPath)
		if err != nil {
			log.Fatal(err)
		}
		err = bookshelf.ReadPl(f, d.Netlist, d.Placement)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}

	legal := "yes"
	if err := d.Placement.CheckLegal(d.Netlist, d.Core); err != nil {
		legal = fmt.Sprintf("NO (%v)", err)
	}
	rep := metrics.Evaluate(d.Netlist, d.Placement, d.Core, metrics.Options{
		RouteCapacityFactor: *capacity,
	})
	ext := datapath.Extract(d.Netlist, datapath.DefaultOptions())
	align := alignmentOf(d, ext)

	fmt.Printf("design:           %s (%d cells, %d nets)\n",
		d.Netlist.Name, d.Netlist.NumCells(), d.Netlist.NumNets())
	fmt.Printf("legal:            %s\n", legal)
	fmt.Printf("HPWL:             %.0f\n", rep.HPWL)
	fmt.Printf("Steiner WL:       %.0f\n", rep.SteinerWL)
	fmt.Printf("routed WL:        %.0f\n", rep.Routed.WirelengthDB)
	fmt.Printf("route overflow:   %.0f tracks over %d edges (peak %.2fx)\n",
		rep.Routed.Overflow, rep.Routed.OverflowEdges, rep.Routed.MaxUsage)
	fmt.Printf("max utilization:  %.2f\n", rep.MaxUtil)
	fmt.Printf("RUDY ACE5:        %.2f\n", rep.Congestion.ACE5)
	fmt.Printf("datapath groups:  %d (%d cells); alignment RMS %.3f\n",
		len(ext.Groups), ext.NumGrouped(), align)
}

// alignmentOf scores how bit-aligned the extracted groups are in this
// placement (0 = perfect arrays).
func alignmentOf(d *bookshelf.Design, ext *datapath.Extraction) float64 {
	if len(ext.Groups) == 0 {
		return 0
	}
	pl := d.Placement
	n := 0
	total := 0.0
	pitch := d.Core.RowH()
	for _, g := range ext.Groups {
		for _, col := range g.Columns {
			// Column x spread.
			mu := 0.0
			for _, c := range col {
				mu += pl.X[c]
			}
			mu /= float64(len(col))
			for _, c := range col {
				dx := pl.X[c] - mu
				total += dx * dx
				n++
			}
			// Row pitch deviation.
			base := 0.0
			for b, c := range col {
				base += pl.Y[c] - float64(b)*pitch
			}
			base /= float64(len(col))
			for b, c := range col {
				dy := pl.Y[c] - (base + float64(b)*pitch)
				total += dy * dy
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sqrt(total / float64(n))
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
