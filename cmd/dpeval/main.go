// Command dpeval scores an existing placement: read a Bookshelf design (and
// optionally a separate .pl with updated positions), check legality, and
// print the full quality report — the tool for comparing placements produced
// by different flows or external placers.
//
// Usage:
//
//	dpeval [-pl other.pl] [-capacity 0.8] [-json report.json] [-v] design.aux
//
// -json writes the report as machine-readable JSON (path "-" for stdout);
// -v adds debug logging of the evaluation stages on stderr.
//
// Routed overflow is reported per bin, not just as a total: the JSON report
// carries every nonzero bin of the routing grid (`routed_overflow_bins`) and
// the text output lists the hottest ones, so the CI routability gate and the
// EXPERIMENTS tables read congestion from this one code path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/bookshelf"
	"repro/internal/datapath"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/route"
)

func main() {
	os.Exit(run())
}

func run() int {
	plPath := flag.String("pl", "", "override placement from this .pl file")
	capacity := flag.Float64("capacity", 0.8, "global-router capacity factor")
	jsonPath := flag.String("json", "", "write the report as JSON to this path (\"-\" for stdout)")
	verbose := flag.Bool("v", false, "debug logging on stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dpeval [flags] design.aux")
		return 2
	}

	rec := obs.New()
	level := obs.Info
	if *verbose {
		level = obs.Debug
	}
	rec.SetLog(os.Stderr, level)
	fatal := func(format string, args ...any) int {
		rec.Logf(obs.Error, "dpeval", format, args...)
		return 1
	}

	d, err := bookshelf.ReadAux(flag.Arg(0))
	if err != nil {
		return fatal("%v", err)
	}
	if d.Core == nil {
		return fatal("design has no .scl row definition")
	}
	if *plPath != "" {
		f, err := os.Open(*plPath)
		if err != nil {
			return fatal("%v", err)
		}
		err = bookshelf.ReadPl(f, d.Netlist, d.Placement)
		f.Close()
		if err != nil {
			return fatal("%v", err)
		}
	}

	legalErr := d.Placement.CheckLegal(d.Netlist, d.Core)
	legal := "yes"
	if legalErr != nil {
		legal = fmt.Sprintf("NO (%v)", legalErr)
	}
	rep := metrics.Evaluate(d.Netlist, d.Placement, d.Core, metrics.Options{
		RouteCapacityFactor: *capacity,
		Obs:                 rec,
	})
	ext := datapath.Extract(d.Netlist, datapath.DefaultOptions())
	align := alignmentOf(d, ext)

	hotBins := overflowBins(&rep.Routed)

	if *jsonPath != "" {
		out := struct {
			Design       string         `json:"design"`
			Legal        bool           `json:"legal"`
			LegalError   string         `json:"legal_error,omitempty"`
			Metrics      metrics.Report `json:"metrics"`
			OverflowBins []binOverflow  `json:"routed_overflow_bins,omitempty"`
			Groups       int            `json:"groups"`
			GroupedCells int            `json:"grouped_cells"`
			AlignRMS     float64        `json:"align_rms"`
		}{d.Netlist.Name, legalErr == nil, errString(legalErr), rep, hotBins,
			len(ext.Groups), ext.NumGrouped(), align}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return fatal("%v", err)
		}
		b = append(b, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(b)
			return 0
		}
		if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			return fatal("%v", err)
		}
	}

	fmt.Printf("design:           %s (%d cells, %d nets)\n",
		d.Netlist.Name, d.Netlist.NumCells(), d.Netlist.NumNets())
	fmt.Printf("legal:            %s\n", legal)
	fmt.Printf("HPWL:             %.0f\n", rep.HPWL)
	fmt.Printf("Steiner WL:       %.0f\n", rep.SteinerWL)
	fmt.Printf("routed WL:        %.0f\n", rep.Routed.WirelengthDB)
	fmt.Printf("route overflow:   %.0f tracks over %d edges, %d bins (peak %.2fx)\n",
		rep.Routed.Overflow, rep.Routed.OverflowEdges, rep.Routed.OverflowBins, rep.Routed.MaxUsage)
	for i, b := range hottestBins(hotBins, 5) {
		if i == 0 {
			fmt.Printf("hottest bins:    ")
		} else {
			fmt.Printf(", ")
		}
		fmt.Printf("(%d,%d) %.1f", b.I, b.J, b.Overflow)
	}
	if len(hotBins) > 0 {
		fmt.Println()
	}
	fmt.Printf("max utilization:  %.2f\n", rep.MaxUtil)
	fmt.Printf("RUDY ACE5:        %.2f\n", rep.Congestion.ACE5)
	fmt.Printf("datapath groups:  %d (%d cells); alignment RMS %.3f\n",
		len(ext.Groups), ext.NumGrouped(), align)
	return 0
}

// binOverflow is one overflowed routing-grid bin in the JSON report.
type binOverflow struct {
	I        int     `json:"i"`
	J        int     `json:"j"`
	Overflow float64 `json:"overflow"` // tracks over capacity charged to this bin
}

// overflowBins extracts the nonzero entries of the router's per-bin overflow
// map, in bin-index order.
func overflowBins(r *route.GRouteResult) []binOverflow {
	var out []binOverflow
	for idx, v := range r.BinOverflow {
		if v > 0 {
			out = append(out, binOverflow{I: idx % r.GridNX, J: idx / r.GridNX, Overflow: v})
		}
	}
	return out
}

// hottestBins returns the n worst bins, ties broken by bin index so the
// listing is deterministic.
func hottestBins(bins []binOverflow, n int) []binOverflow {
	sorted := append([]binOverflow(nil), bins...)
	sort.SliceStable(sorted, func(a, b int) bool {
		return sorted[a].Overflow > sorted[b].Overflow
	})
	if len(sorted) > n {
		sorted = sorted[:n]
	}
	return sorted
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// alignmentOf scores how bit-aligned the extracted groups are in this
// placement (0 = perfect arrays).
func alignmentOf(d *bookshelf.Design, ext *datapath.Extraction) float64 {
	if len(ext.Groups) == 0 {
		return 0
	}
	pl := d.Placement
	n := 0
	total := 0.0
	pitch := d.Core.RowH()
	for _, g := range ext.Groups {
		for _, col := range g.Columns {
			// Column x spread.
			mu := 0.0
			for _, c := range col {
				mu += pl.X[c]
			}
			mu /= float64(len(col))
			for _, c := range col {
				dx := pl.X[c] - mu
				total += dx * dx
				n++
			}
			// Row pitch deviation.
			base := 0.0
			for b, c := range col {
				base += pl.Y[c] - float64(b)*pitch
			}
			base /= float64(len(col))
			for b, c := range col {
				dy := pl.Y[c] - (base + float64(b)*pitch)
				total += dy * dy
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sqrt(total / float64(n))
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
