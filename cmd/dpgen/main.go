// Command dpgen generates a synthetic datapath-intensive benchmark and
// writes it out in Bookshelf format.
//
// Usage:
//
//	dpgen -name dp01 -out ./bench [-seed 7] [-bits 16] [-units adder,muxtree]
//	      [-random 2000] [-pads 16] [-scramble]
//	dpgen -suite -out ./bench     # write the whole dp01..dp08 suite
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/bookshelf"
	"repro/internal/gen"
)

func main() {
	name := flag.String("name", "bench", "design name")
	out := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 7, "generator seed")
	bits := flag.Int("bits", 16, "datapath width")
	units := flag.String("units", "adder,muxtree", "comma-separated unit kinds (adder,muxtree,shifter,regbank)")
	random := flag.Int("random", 1000, "random-logic cells")
	pads := flag.Int("pads", 16, "IO pads")
	scramble := flag.Bool("scramble", false, "strip bus indices from net names")
	suite := flag.Bool("suite", false, "generate the full dp01..dp08 suite instead")
	flag.Parse()

	if *suite {
		for _, cfg := range gen.Suite() {
			write(cfg, *out)
		}
		return
	}

	var kinds []gen.UnitKind
	for _, u := range strings.Split(*units, ",") {
		switch strings.TrimSpace(u) {
		case "adder":
			kinds = append(kinds, gen.Adder)
		case "muxtree":
			kinds = append(kinds, gen.MuxTree)
		case "shifter":
			kinds = append(kinds, gen.Shifter)
		case "regbank":
			kinds = append(kinds, gen.RegBank)
		case "":
		default:
			log.Fatalf("dpgen: unknown unit kind %q", u)
		}
	}
	write(gen.Config{
		Name: *name, Seed: *seed, Bits: *bits, Units: kinds,
		RandomCells: *random, Pads: *pads, Scramble: *scramble,
	}, *out)
}

func write(cfg gen.Config, dir string) {
	b := gen.Generate(cfg)
	d := &bookshelf.Design{Netlist: b.Netlist, Placement: b.Placement, Core: b.Core}
	path, err := bookshelf.WriteAux(dir, cfg.Name, d)
	if err != nil {
		log.Fatal(err)
	}
	s := b.Netlist.ComputeStats()
	fmt.Printf("%s: %d cells, %d nets, %d pins, datapath fraction %.1f%% -> %s\n",
		cfg.Name, s.Cells, s.Nets, s.Pins, b.DatapathFraction()*100, path)
}
