// Command experiments regenerates every table and figure of the evaluation
// and prints them to stdout.
//
// Usage:
//
//	experiments [-quick] [-only 1,2,3,4,5,6,10,f5,f6,f7]
//
// -quick shrinks budgets and the suite for a fast smoke run; the default
// (full) budget reproduces the numbers recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/gen"
)

func main() {
	quick := flag.Bool("quick", false, "reduced budgets and suite")
	only := flag.String("only", "", "comma-separated experiment ids (1,2,3,4,5,6,10,f5,f6,f7); empty = all")
	flag.Parse()

	opts := experiments.RunOpts{Quick: *quick}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	cfgs := experiments.SuiteConfigs(opts)
	out := os.Stdout

	if sel("1") {
		experiments.Table1(cfgs).Fprint(out)
	}

	var cases []*experiments.Case
	if sel("2") || sel("3") {
		var err error
		cases, err = experiments.RunSuite(cfgs, opts)
		if err != nil {
			log.Fatal(err)
		}
	}
	if sel("2") {
		experiments.Table2(cases).Fprint(out)
	}
	if sel("3") {
		experiments.Table3(cases).Fprint(out)
	}
	if sel("4") {
		experiments.Table4(cfgs).Fprint(out)
	}
	if sel("5") {
		n := 3
		if len(cfgs) < n {
			n = len(cfgs)
		}
		tbl, err := experiments.Table5(cfgs[:n], opts)
		if err != nil {
			log.Fatal(err)
		}
		tbl.Fprint(out)
	}
	if sel("6") {
		// Seed robustness on the dp03 shape.
		base := gen.Suite()[2]
		tbl, err := experiments.Table6(base, []int64{103, 203, 303, 403, 503}, opts)
		if err != nil {
			log.Fatal(err)
		}
		tbl.Fprint(out)
	}
	if sel("10") {
		n := 3
		if len(cfgs) < n {
			n = len(cfgs)
		}
		tbl, err := experiments.Table10(cfgs[:n], opts)
		if err != nil {
			log.Fatal(err)
		}
		tbl.Fprint(out)
	}
	if sel("f5") {
		tbl, err := experiments.Figure5(opts)
		if err != nil {
			log.Fatal(err)
		}
		tbl.Fprint(out)
	}
	if sel("f6") {
		tbl, err := experiments.Figure6(convergenceConfig(opts), opts)
		if err != nil {
			log.Fatal(err)
		}
		tbl.Fprint(out)
	}
	if sel("f7") {
		tbl, err := experiments.Figure7(convergenceConfig(opts), opts)
		if err != nil {
			log.Fatal(err)
		}
		tbl.Fprint(out)
	}
	fmt.Fprintln(out, "done.")
}

// convergenceConfig is the fixed design used by the per-iteration figures
// (dp03 in the full suite; a shrunken variant in quick mode).
func convergenceConfig(opts experiments.RunOpts) gen.Config {
	cfg := gen.Suite()[2]
	if opts.Quick {
		cfg.RandomCells = 400
	}
	return cfg
}
