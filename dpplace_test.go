package dpplace_test

import (
	"bytes"
	"strings"
	"testing"

	dpplace "repro"
)

// TestPublicAPIEndToEnd exercises the whole public surface: generate →
// extract → place (both modes) → evaluate → render → Bookshelf round trip.
func TestPublicAPIEndToEnd(t *testing.T) {
	bench := dpplace.Generate(dpplace.BenchConfig{
		Name: "api", Seed: 11, Bits: 8,
		Units:       []dpplace.UnitKind{dpplace.Adder, dpplace.RegBank},
		RandomCells: 200,
	})

	ext := dpplace.Extract(bench.Netlist, dpplace.DefaultExtractOptions())
	if ext.NumGrouped() == 0 {
		t.Fatal("extraction found nothing")
	}
	score := dpplace.ScoreExtraction(bench.Truth, ext.Labels())
	if score.F1 < 0.9 {
		t.Errorf("extraction F1 = %.3f", score.F1)
	}

	res, err := dpplace.Place(bench.Netlist, bench.Core, bench.Placement, dpplace.Options{
		Mode: dpplace.StructureAware,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LegalityChecked {
		t.Error("placement not verified legal")
	}

	rep := dpplace.Evaluate(bench.Netlist, res.Placement, bench.Core, dpplace.ReportOptions{})
	if rep.HPWL <= 0 {
		t.Errorf("report HPWL = %g", rep.HPWL)
	}

	var svg bytes.Buffer
	if err := dpplace.WriteSVG(&svg, bench.Netlist, res.Placement, bench.Core, res.Extraction, "api"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "</svg>") {
		t.Error("SVG incomplete")
	}

	dir := t.TempDir()
	aux, err := dpplace.WriteBookshelf(dir, "api", &dpplace.Design{
		Netlist: bench.Netlist, Placement: res.Placement, Core: bench.Core,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := dpplace.ReadBookshelf(aux)
	if err != nil {
		t.Fatal(err)
	}
	if back.Netlist.NumCells() != bench.Netlist.NumCells() {
		t.Errorf("round trip lost cells: %d vs %d",
			back.Netlist.NumCells(), bench.Netlist.NumCells())
	}
	// The written placement must still be legal after the round trip.
	if err := back.Placement.CheckLegal(back.Netlist, back.Core); err != nil {
		t.Errorf("round-tripped placement illegal: %v", err)
	}
}

func TestPublicBaselineMode(t *testing.T) {
	bench := dpplace.Generate(dpplace.BenchConfig{
		Name: "apib", Seed: 12, Bits: 8,
		Units: []dpplace.UnitKind{dpplace.MuxTree}, RandomCells: 150,
	})
	res, err := dpplace.Place(bench.Netlist, bench.Core, bench.Placement, dpplace.Options{
		Mode: dpplace.Baseline,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Extraction != nil {
		t.Error("baseline mode ran extraction")
	}
}
