package dpplace_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"

	dpplace "repro"
	"repro/internal/place/congestion"
	"repro/internal/place/global"
)

// goldenBench regenerates the same deterministic benchmark for each run, so
// every placement starts from an identical netlist and initial placement.
func goldenBench() *dpplace.Benchmark {
	return dpplace.Generate(dpplace.BenchConfig{
		Name: "golden", Seed: 23, Bits: 8,
		Units:       []dpplace.UnitKind{dpplace.Adder, dpplace.RegBank},
		RandomCells: 200,
	})
}

func goldenPlace(t *testing.T, ctx context.Context) *dpplace.Result {
	t.Helper()
	bench := goldenBench()
	res, err := dpplace.PlaceCtx(ctx, bench.Netlist, bench.Core, bench.Placement,
		dpplace.Options{Mode: dpplace.StructureAware})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func samePlacement(t *testing.T, label string, a, b *dpplace.Placement) {
	t.Helper()
	if len(a.X) != len(b.X) {
		t.Fatalf("%s: placement sizes differ: %d vs %d", label, len(a.X), len(b.X))
	}
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] {
			t.Fatalf("%s: cell %d moved: (%v,%v) vs (%v,%v) — tracing must be passive",
				label, i, a.X[i], a.Y[i], b.X[i], b.Y[i])
		}
	}
}

// TestTracingIsPassive is the golden test of the observability layer: a run
// with no recorder, a run with a disabled recorder, and a fully traced run
// must produce bit-identical placements.
func TestTracingIsPassive(t *testing.T) {
	plain := goldenPlace(t, context.Background())

	disabled := dpplace.NewRecorder()
	resDisabled := goldenPlace(t, dpplace.WithRecorder(context.Background(), disabled))
	samePlacement(t, "disabled recorder", plain.Placement, resDisabled.Placement)

	var trace bytes.Buffer
	enabled := dpplace.NewRecorder()
	enabled.SetTrace(&trace)
	resTraced := goldenPlace(t, dpplace.WithRecorder(context.Background(), enabled))
	samePlacement(t, "enabled recorder", plain.Placement, resTraced.Placement)

	// The disabled recorder must have stayed empty.
	if len(disabled.Counters()) != 0 {
		t.Errorf("disabled recorder accumulated counters: %v", disabled.Counters())
	}

	// The trace must actually contain the flow's telemetry.
	type ev struct {
		Ev    string `json:"ev"`
		Name  string `json:"name"`
		Stage string `json:"stage"`
	}
	spans := map[string]int{}
	iters, outers := 0, 0
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(trace.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		lines++
		var e ev
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("invalid trace line %q: %v", sc.Bytes(), err)
		}
		switch e.Ev {
		case "span":
			spans[e.Name]++
		case "iter":
			iters++
		case "outer":
			outers++
		}
	}
	for _, want := range []string{"place", "extract", "global", "legalize", "detail"} {
		if spans[want] == 0 {
			t.Errorf("trace has no %q span (spans: %v)", want, spans)
		}
	}
	if iters == 0 {
		t.Error("trace has no solver iter events")
	}
	if outers == 0 {
		t.Error("trace has no λ-schedule outer events")
	}
	if got := len(enabled.Trajectory()); got != outers {
		t.Errorf("in-memory trajectory has %d points, trace has %d outer events",
			got, outers)
	}
	if enabled.Counter("global/outer_iters") == 0 {
		t.Errorf("global span counters did not roll up: %v", enabled.Counters())
	}
	t.Logf("trace: %d lines, %d iters, %d outers, spans %v", lines, iters, outers, spans)
}

// TestWorkersBitIdentical is the golden determinism test of the parallel
// engine: the full structure-aware flow must produce bit-identical
// placements at every worker count. The parallel hot paths compute per-net
// (or per-row) results concurrently but reduce them in a fixed serial
// order, so float non-associativity never enters the picture.
func TestWorkersBitIdentical(t *testing.T) {
	place := func(workers int) *dpplace.Result {
		t.Helper()
		bench := goldenBench()
		res, err := dpplace.PlaceCtx(context.Background(),
			bench.Netlist, bench.Core, bench.Placement,
			dpplace.Options{
				Mode:   dpplace.StructureAware,
				Global: global.Options{Workers: workers},
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := place(1)
	if serial.GlobalResult.Workers != 1 {
		t.Fatalf("workers=1 run reports %d workers", serial.GlobalResult.Workers)
	}
	for _, workers := range []int{2, 4} {
		par := place(workers)
		samePlacement(t, "workers", serial.Placement, par.Placement)
		if par.GlobalResult.Workers != workers {
			t.Errorf("workers=%d run reports %d workers", workers, par.GlobalResult.Workers)
		}
		if par.GlobalResult.NetReuses == 0 {
			t.Errorf("workers=%d run reused no per-net results", workers)
		}
		if r := par.GlobalResult.DirtyNetRatio(); r <= 0 || r >= 1 {
			t.Errorf("workers=%d run has degenerate dirty-net ratio %v", workers, r)
		}
	}
}

// TestWorkersBitIdenticalCongestion extends the golden determinism gate to
// the congestion feedback loop: with the loop engaged (gate forced open and
// the RUDY capacity dropped so the small golden design is unambiguously
// congested), the full flow must still produce bit-identical placements and
// identical controller stats at every worker count.
func TestWorkersBitIdenticalCongestion(t *testing.T) {
	place := func(workers int) *dpplace.Result {
		t.Helper()
		bench := goldenBench()
		res, err := dpplace.PlaceCtx(context.Background(),
			bench.Netlist, bench.Core, bench.Placement,
			dpplace.Options{
				Mode: dpplace.StructureAware,
				Global: global.Options{
					Workers: workers,
					Congestion: congestion.Options{
						Enable:          true,
						SnapshotOnEntry: true,
						MaxDensOverflow: 100,
						Capacity:        0.02,
					},
				},
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := place(1)
	st := serial.GlobalResult.Congestion
	if st == nil || st.Snapshots == 0 {
		t.Fatalf("congestion loop never engaged: %+v", st)
	}
	for _, workers := range []int{2, 4} {
		par := place(workers)
		samePlacement(t, "congestion workers", serial.Placement, par.Placement)
		pst := par.GlobalResult.Congestion
		if pst.Snapshots != st.Snapshots || pst.Applied != st.Applied ||
			pst.InflatedCells != st.InflatedCells || pst.MaxInflation != st.MaxInflation {
			t.Errorf("workers=%d: congestion stats %+v != serial %+v", workers, pst, st)
		}
	}
}

// TestCollectModeReport asserts -report-style collection works without a
// trace sink: counters and trajectory aggregate in memory.
func TestCollectModeReport(t *testing.T) {
	rec := dpplace.NewRecorder()
	rec.Collect()
	res := goldenPlace(t, dpplace.WithRecorder(context.Background(), rec))

	if len(rec.Trajectory()) == 0 {
		t.Error("collect mode gathered no trajectory")
	}
	cs := rec.Counters()
	if len(cs) == 0 {
		t.Fatal("collect mode gathered no counters")
	}
	if cs["extract/groups"] == 0 {
		t.Errorf("extract/groups counter missing: %v", cs)
	}
	if cs["global/outer_iters"] == 0 {
		t.Errorf("global/outer_iters counter missing: %v", cs)
	}

	rep := &dpplace.RunReport{
		Design: "golden", Mode: "structure-aware", Exit: "ok",
		Counters:   cs,
		Trajectory: rec.Trajectory(),
	}
	rep.HPWL.Final = res.Placement.HPWL(goldenBench().Netlist)
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back dpplace.RunReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Design != "golden" || len(back.Trajectory) != len(rep.Trajectory) {
		t.Fatalf("run report did not round-trip: %+v", back)
	}
}
